package attest

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"revelio/internal/amdsp"
	"revelio/internal/kds"
	"revelio/internal/measure"
	"revelio/internal/registry"
	"revelio/internal/sev"
	"revelio/internal/vm"
)

type rig struct {
	mfr    *amdsp.Manufacturer
	sp     *amdsp.SecureProcessor
	guest  *amdsp.GuestChannel
	client *kds.Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	mfr, err := amdsp.NewManufacturer([]byte("attest-test"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := mfr.MintProcessor([]byte("chip"), 2)
	if err != nil {
		t.Fatal(err)
	}
	h := sp.LaunchStart(0, 0)
	if err := sp.LaunchUpdate(h, measure.PageNormal, 0, []byte("fw"), "ovmf"); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.LaunchFinish(h); err != nil {
		t.Fatal(err)
	}
	guest, err := sp.GuestChannel(h)
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(kds.NewServer(mfr))
	t.Cleanup(server.Close)
	return &rig{mfr: mfr, sp: sp, guest: guest, client: kds.NewClient(server.URL, nil)}
}

func (r *rig) report(t *testing.T, data sev.ReportData) *sev.Report {
	t.Helper()
	rep, err := r.guest.Report(data)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestVerifyReportHappyPath(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{1})
	v := NewVerifier(r.client, NewStaticGolden(rep.Measurement))
	res, err := v.VerifyReport(context.Background(), rep)
	if err != nil {
		t.Fatalf("VerifyReport: %v", err)
	}
	if res.Report != rep || res.VCEK == nil {
		t.Error("incomplete result")
	}
}

func TestVerifyRawRoundTrip(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{2})
	raw, err := rep.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(r.client, NewStaticGolden(rep.Measurement))
	if _, err := v.VerifyRaw(context.Background(), raw); err != nil {
		t.Fatalf("VerifyRaw: %v", err)
	}
	if _, err := v.VerifyRaw(context.Background(), []byte("junk")); !errors.Is(err, sev.ErrBadReport) {
		t.Errorf("junk: err = %v, want ErrBadReport", err)
	}
}

func TestUntrustedMeasurementRejected(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	var other measure.Measurement
	other[0] = 0xEE
	v := NewVerifier(r.client, NewStaticGolden(other))
	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, ErrUntrustedMeasurement) {
		t.Errorf("err = %v, want ErrUntrustedMeasurement", err)
	}
}

func TestNilPolicySkipsMeasurementCheck(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	v := NewVerifier(r.client, nil)
	if _, err := v.VerifyReport(context.Background(), rep); err != nil {
		t.Errorf("nil policy: %v", err)
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	rep.Measurement[0] ^= 1 // attacker edits the measurement post-signing
	v := NewVerifier(r.client, nil)
	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, sev.ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

// TestImpersonatorWithValidReport is §5.3.1: an authentic report from a
// chip outside the allow-list is rejected.
func TestImpersonatorWithValidReport(t *testing.T) {
	r := newRig(t)
	impostor, err := r.mfr.MintProcessor([]byte("impostor-chip"), 2)
	if err != nil {
		t.Fatal(err)
	}
	h := impostor.LaunchStart(0, 0)
	if err := impostor.LaunchUpdate(h, measure.PageNormal, 0, []byte("fw"), "ovmf"); err != nil {
		t.Fatal(err)
	}
	if _, err := impostor.LaunchFinish(h); err != nil {
		t.Fatal(err)
	}
	g, err := impostor.GuestChannel(h)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Report(sev.ReportData{})
	if err != nil {
		t.Fatal(err)
	}

	v := NewVerifier(r.client, nil, WithChipAllowList(r.sp.ChipID()))
	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, ErrChipNotAllowed) {
		t.Errorf("err = %v, want ErrChipNotAllowed", err)
	}
	// The legitimate chip still passes.
	legit := r.report(t, sev.ReportData{})
	if _, err := v.VerifyReport(context.Background(), legit); err != nil {
		t.Errorf("legit chip: %v", err)
	}
}

func TestChipIDSpoofRejected(t *testing.T) {
	// A report claiming a different ChipID fails: either the KDS has no
	// cert for it, or the signature check fails against the real chip's
	// VCEK.
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	rep.ChipID[0] ^= 1
	v := NewVerifier(r.client, nil)
	if _, err := v.VerifyReport(context.Background(), rep); err == nil {
		t.Error("spoofed chip id verified")
	}
}

func TestRegistryAsTrustPolicy(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	reg := registry.New(1)
	reg.AddVoter("dao")
	v := NewVerifier(r.client, reg)

	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, ErrUntrustedMeasurement) {
		t.Fatalf("unvoted measurement accepted: %v", err)
	}
	if err := reg.Propose(rep.Measurement, "v1"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Vote("dao", rep.Measurement); err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyReport(context.Background(), rep); err != nil {
		t.Errorf("voted measurement rejected: %v", err)
	}
	// Rollback: revoked → rejected again.
	if err := reg.Revoke(rep.Measurement); err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, ErrUntrustedMeasurement) {
		t.Errorf("revoked measurement accepted: %v", err)
	}
}

func TestBundleBinding(t *testing.T) {
	r := newRig(t)
	payload := []byte("public-key-der-bytes")
	rep := r.report(t, vm.HashOf(payload))
	bundle, err := NewBundle(rep, payload)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := bundle.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}

	v := NewVerifier(r.client, nil)
	if _, err := v.VerifyBundle(context.Background(), back, vm.HashOf); err != nil {
		t.Fatalf("VerifyBundle: %v", err)
	}

	// Swapped payload breaks the binding.
	back.Payload = []byte("attacker-key")
	if _, err := v.VerifyBundle(context.Background(), back, vm.HashOf); !errors.Is(err, ErrReportDataMismatch) {
		t.Errorf("err = %v, want ErrReportDataMismatch", err)
	}

	// Corrupt report bytes are rejected structurally.
	back.ReportRaw = []byte("junk")
	if _, err := v.VerifyBundle(context.Background(), back, vm.HashOf); !errors.Is(err, sev.ErrBadReport) {
		t.Errorf("err = %v, want ErrBadReport", err)
	}

	if _, err := DecodeBundle([]byte("{")); err == nil {
		t.Error("bad JSON bundle accepted")
	}
}

func TestStaticGoldenMultiple(t *testing.T) {
	var a, b, c measure.Measurement
	a[0], b[0], c[0] = 1, 2, 3
	g := NewStaticGolden(a, b)
	if !g.IsTrusted(a) || !g.IsTrusted(b) || g.IsTrusted(c) {
		t.Error("StaticGolden membership wrong")
	}
}

// TestTCBFloor: a verifier with a raised TCB floor rejects reports from
// platforms running older SNP firmware (platform-level rollback defence).
func TestTCBFloor(t *testing.T) {
	r := newRig(t) // chip TCB = 2
	rep := r.report(t, sev.ReportData{})

	current := NewVerifier(r.client, nil, WithMinTCB(2))
	if _, err := current.VerifyReport(context.Background(), rep); err != nil {
		t.Errorf("TCB at floor rejected: %v", err)
	}
	raised := NewVerifier(r.client, nil, WithMinTCB(3))
	if _, err := raised.VerifyReport(context.Background(), rep); !errors.Is(err, ErrTCBTooOld) {
		t.Errorf("err = %v, want ErrTCBTooOld", err)
	}
}
