package attest

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"revelio/internal/amdsp"
	"revelio/internal/kds"
	"revelio/internal/measure"
	"revelio/internal/registry"
	"revelio/internal/sev"
	"revelio/internal/vm"
)

type rig struct {
	mfr    *amdsp.Manufacturer
	sp     *amdsp.SecureProcessor
	guest  *amdsp.GuestChannel
	client *kds.Client
	hits   atomic.Int64 // KDS round trips observed
}

func newRig(t *testing.T) *rig {
	t.Helper()
	mfr, err := amdsp.NewManufacturer([]byte("attest-test"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := mfr.MintProcessor([]byte("chip"), 2)
	if err != nil {
		t.Fatal(err)
	}
	h := sp.LaunchStart(0, 0)
	if err := sp.LaunchUpdate(h, measure.PageNormal, 0, []byte("fw"), "ovmf"); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.LaunchFinish(h); err != nil {
		t.Fatal(err)
	}
	guest, err := sp.GuestChannel(h)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{mfr: mfr, sp: sp, guest: guest}
	kdsHandler := kds.NewServer(mfr)
	server := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.hits.Add(1)
		kdsHandler.ServeHTTP(w, req)
	}))
	t.Cleanup(server.Close)
	r.client = kds.NewClient(server.URL, nil)
	return r
}

func (r *rig) report(t *testing.T, data sev.ReportData) *sev.Report {
	t.Helper()
	rep, err := r.guest.Report(data)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestVerifyReportHappyPath(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{1})
	v := NewVerifier(r.client, NewStaticGolden(rep.Measurement))
	res, err := v.VerifyReport(context.Background(), rep)
	if err != nil {
		t.Fatalf("VerifyReport: %v", err)
	}
	if res.Report != rep || res.VCEK == nil {
		t.Error("incomplete result")
	}
}

func TestVerifyRawRoundTrip(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{2})
	raw, err := rep.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(r.client, NewStaticGolden(rep.Measurement))
	if _, err := v.VerifyRaw(context.Background(), raw); err != nil {
		t.Fatalf("VerifyRaw: %v", err)
	}
	if _, err := v.VerifyRaw(context.Background(), []byte("junk")); !errors.Is(err, sev.ErrBadReport) {
		t.Errorf("junk: err = %v, want ErrBadReport", err)
	}
}

func TestUntrustedMeasurementRejected(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	var other measure.Measurement
	other[0] = 0xEE
	v := NewVerifier(r.client, NewStaticGolden(other))
	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, ErrUntrustedMeasurement) {
		t.Errorf("err = %v, want ErrUntrustedMeasurement", err)
	}
}

func TestNilPolicySkipsMeasurementCheck(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	v := NewVerifier(r.client, nil)
	if _, err := v.VerifyReport(context.Background(), rep); err != nil {
		t.Errorf("nil policy: %v", err)
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	rep.Measurement[0] ^= 1 // attacker edits the measurement post-signing
	v := NewVerifier(r.client, nil)
	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, sev.ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

// TestImpersonatorWithValidReport is §5.3.1: an authentic report from a
// chip outside the allow-list is rejected.
func TestImpersonatorWithValidReport(t *testing.T) {
	r := newRig(t)
	impostor, err := r.mfr.MintProcessor([]byte("impostor-chip"), 2)
	if err != nil {
		t.Fatal(err)
	}
	h := impostor.LaunchStart(0, 0)
	if err := impostor.LaunchUpdate(h, measure.PageNormal, 0, []byte("fw"), "ovmf"); err != nil {
		t.Fatal(err)
	}
	if _, err := impostor.LaunchFinish(h); err != nil {
		t.Fatal(err)
	}
	g, err := impostor.GuestChannel(h)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Report(sev.ReportData{})
	if err != nil {
		t.Fatal(err)
	}

	v := NewVerifier(r.client, nil, WithChipAllowList(r.sp.ChipID()))
	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, ErrChipNotAllowed) {
		t.Errorf("err = %v, want ErrChipNotAllowed", err)
	}
	// The legitimate chip still passes.
	legit := r.report(t, sev.ReportData{})
	if _, err := v.VerifyReport(context.Background(), legit); err != nil {
		t.Errorf("legit chip: %v", err)
	}
}

func TestChipIDSpoofRejected(t *testing.T) {
	// A report claiming a different ChipID fails: either the KDS has no
	// cert for it, or the signature check fails against the real chip's
	// VCEK.
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	rep.ChipID[0] ^= 1
	v := NewVerifier(r.client, nil)
	if _, err := v.VerifyReport(context.Background(), rep); err == nil {
		t.Error("spoofed chip id verified")
	}
}

func TestRegistryAsTrustPolicy(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{})
	reg := registry.New(1)
	reg.AddVoter("dao")
	v := NewVerifier(r.client, reg)

	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, ErrUntrustedMeasurement) {
		t.Fatalf("unvoted measurement accepted: %v", err)
	}
	if err := reg.Propose(rep.Measurement, "v1"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Vote("dao", rep.Measurement); err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyReport(context.Background(), rep); err != nil {
		t.Errorf("voted measurement rejected: %v", err)
	}
	// Rollback: revoked → rejected again.
	if err := reg.Revoke(rep.Measurement); err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyReport(context.Background(), rep); !errors.Is(err, ErrRevoked) {
		t.Errorf("revoked measurement accepted: %v", err)
	}
}

func TestBundleBinding(t *testing.T) {
	r := newRig(t)
	payload := []byte("public-key-der-bytes")
	rep := r.report(t, vm.HashOf(payload))
	bundle, err := NewBundle(rep, payload)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := bundle.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}

	v := NewVerifier(r.client, nil)
	if _, err := v.VerifyBundle(context.Background(), back, vm.HashOf); err != nil {
		t.Fatalf("VerifyBundle: %v", err)
	}

	// Swapped payload breaks the binding.
	back.Payload = []byte("attacker-key")
	if _, err := v.VerifyBundle(context.Background(), back, vm.HashOf); !errors.Is(err, ErrReportDataMismatch) {
		t.Errorf("err = %v, want ErrReportDataMismatch", err)
	}

	// Corrupt report bytes are rejected structurally.
	back.ReportRaw = []byte("junk")
	if _, err := v.VerifyBundle(context.Background(), back, vm.HashOf); !errors.Is(err, sev.ErrBadReport) {
		t.Errorf("err = %v, want ErrBadReport", err)
	}

	if _, err := DecodeBundle([]byte("{")); err == nil {
		t.Error("bad JSON bundle accepted")
	}
}

func TestStaticGoldenMultiple(t *testing.T) {
	var a, b, c measure.Measurement
	a[0], b[0], c[0] = 1, 2, 3
	g := NewStaticGolden(a, b)
	if !g.IsTrusted(a) || !g.IsTrusted(b) || g.IsTrusted(c) {
		t.Error("StaticGolden membership wrong")
	}
}

// TestVerifyReportCacheSkipsKDS: re-verifying a proven report touches
// the KDS zero times — the report-digest cache short-circuits the whole
// pipeline.
func TestVerifyReportCacheSkipsKDS(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{9})
	v := NewVerifier(r.client, NewStaticGolden(rep.Measurement))
	ctx := context.Background()

	if _, err := v.VerifyReport(ctx, rep); err != nil {
		t.Fatal(err)
	}
	cold := r.hits.Load()
	for i := 0; i < 5; i++ {
		res, err := v.VerifyReport(ctx, rep)
		if err != nil {
			t.Fatalf("cached verify %d: %v", i, err)
		}
		if res.Report != rep || res.VCEK == nil {
			t.Fatal("cached verify returned incomplete result")
		}
	}
	if n := r.hits.Load(); n != cold {
		t.Errorf("cached verifications cost %d KDS round trips, want 0", n-cold)
	}
}

// TestChainProofSkipsChainWalkForFreshReports: a *fresh* report (new
// REPORT_DATA, so a cache miss on the report digest) under an
// already-proven VCEK pays only the signature check — observable as the
// warm path needing KDS traffic only if the client cache is cold.
func TestChainProofSkipsChainWalkForFreshReports(t *testing.T) {
	r := newRig(t)
	r.client.SetCaching(true) // warm-VCEK scenario
	v := NewVerifier(r.client, nil)
	ctx := context.Background()

	if _, err := v.VerifyReport(ctx, r.report(t, sev.ReportData{1})); err != nil {
		t.Fatal(err)
	}
	warm := r.hits.Load()
	// Ten fresh reports: every one is a report-cache miss but a
	// chain-proof and client-cache hit — zero further KDS round trips.
	for i := 2; i < 12; i++ {
		if _, err := v.VerifyReport(ctx, r.report(t, sev.ReportData{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if n := r.hits.Load(); n != warm {
		t.Errorf("fresh reports under warm caches cost %d KDS round trips, want 0", n-warm)
	}
}

// TestTamperedReportMissesCacheAndFailsClosed: after a report is proven
// and cached, flipping any bit produces a different digest, misses the
// cache, and fails full verification — through every cache layer.
func TestTamperedReportMissesCacheAndFailsClosed(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{4})
	v := NewVerifier(r.client, nil)
	ctx := context.Background()

	if _, err := v.VerifyReport(ctx, rep); err != nil {
		t.Fatal(err)
	}

	tampered := *rep
	tampered.Measurement[0] ^= 1
	if _, err := v.VerifyReport(ctx, &tampered); !errors.Is(err, sev.ErrBadSignature) {
		t.Errorf("tampered measurement: err = %v, want ErrBadSignature", err)
	}
	sigTampered := *rep
	sigTampered.Signature = append([]byte(nil), rep.Signature...)
	sigTampered.Signature[0] ^= 1
	if _, err := v.VerifyReport(ctx, &sigTampered); err == nil {
		t.Error("tampered signature verified")
	}
	// The original still verifies (and from cache).
	if _, err := v.VerifyReport(ctx, rep); err != nil {
		t.Errorf("original report after tamper attempts: %v", err)
	}
}

// TestFailedVerificationNeverCached: a rejected report is re-verified in
// full on every attempt (KDS traffic every time), and keeps failing.
func TestFailedVerificationNeverCached(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{5})
	rep.ChipID[0] ^= 1 // unknown chip: the VCEK fetch 404s
	v := NewVerifier(r.client, nil)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		before := r.hits.Load()
		if _, err := v.VerifyReport(ctx, rep); err == nil {
			t.Fatalf("attempt %d: tampered report verified", i)
		}
		if r.hits.Load() == before {
			t.Errorf("attempt %d skipped the KDS; failures must not be cached", i)
		}
	}
}

// TestPolicyRecheckedOnCacheHit: revoking a measurement in the registry
// fails a report whose cryptographic proof is still cached — policy is
// judged on every hit, with no InvalidatePolicy needed.
func TestPolicyRecheckedOnCacheHit(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{6})
	reg := registry.New(1)
	reg.AddVoter("dao")
	if err := reg.Propose(rep.Measurement, "v1"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Vote("dao", rep.Measurement); err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(r.client, reg)
	ctx := context.Background()

	if _, err := v.VerifyReport(ctx, rep); err != nil {
		t.Fatal(err)
	}
	cold := r.hits.Load()
	if err := reg.Revoke(rep.Measurement); err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyReport(ctx, rep); !errors.Is(err, ErrRevoked) {
		t.Errorf("revoked measurement served from cache: %v", err)
	}
	if r.hits.Load() != cold {
		t.Error("policy recheck unexpectedly re-ran the crypto pipeline")
	}
}

// TestInvalidatePolicyDropsProofs: after invalidation the next verify
// re-runs the full pipeline (observable as fresh KDS traffic).
func TestInvalidatePolicyDropsProofs(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{7})
	v := NewVerifier(r.client, nil)
	ctx := context.Background()

	if _, err := v.VerifyReport(ctx, rep); err != nil {
		t.Fatal(err)
	}
	cold := r.hits.Load()
	v.InvalidatePolicy()
	if _, err := v.VerifyReport(ctx, rep); err != nil {
		t.Fatal(err)
	}
	if r.hits.Load() == cold {
		t.Error("verification after InvalidatePolicy did not re-run the pipeline")
	}
}

// TestProofExpiresWithVCEKValidity: a cached proof dies with its VCEK's
// NotAfter — once the verifier's clock passes it, the cached fast path
// must not keep validating what the full chain walk would now reject.
func TestProofExpiresWithVCEKValidity(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{11})
	var (
		mu  sync.Mutex
		now = time.Now()
	)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	v := NewVerifier(r.client, nil, WithClock(clock))
	ctx := context.Background()

	res, err := v.VerifyReport(ctx, rep)
	if err != nil {
		t.Fatal(err)
	}
	// Jump the clock past the VCEK's validity: both the cached and the
	// full path must reject.
	mu.Lock()
	now = res.VCEK.NotAfter.Add(time.Hour)
	mu.Unlock()
	if _, err := v.VerifyReport(ctx, rep); !errors.Is(err, ErrEvidenceExpired) {
		t.Errorf("expired VCEK: err = %v, want ErrEvidenceExpired", err)
	}
}

// TestWarmChainProofSkipsCertChainFetch: with the chain proof warm, a
// fresh report on a *cache-disabled* KDS client fetches only the VCEK —
// the ASK/ARK chain fetch is deferred until a chain walk actually runs.
func TestWarmChainProofSkipsCertChainFetch(t *testing.T) {
	r := newRig(t) // client caching off
	v := NewVerifier(r.client, nil)
	ctx := context.Background()

	if _, err := v.VerifyReport(ctx, r.report(t, sev.ReportData{12})); err != nil {
		t.Fatal(err)
	}
	before := r.hits.Load()
	if _, err := v.VerifyReport(ctx, r.report(t, sev.ReportData{13})); err != nil {
		t.Fatal(err)
	}
	if n := r.hits.Load() - before; n != 1 {
		t.Errorf("fresh report under proven chain cost %d KDS round trips, want 1 (VCEK only)", n)
	}
}

// TestVerifyReportConcurrent hammers one verifier from many goroutines
// (run under -race): same report, fresh reports, and a tampered report
// interleaved; the caches must stay correct and fail-closed throughout.
func TestVerifyReportConcurrent(t *testing.T) {
	r := newRig(t)
	shared := r.report(t, sev.ReportData{8})
	bad := *shared
	bad.Measurement[5] ^= 1
	v := NewVerifier(r.client, NewStaticGolden(shared.Measurement))
	ctx := context.Background()

	fresh := make([]*sev.Report, 8)
	for i := range fresh {
		fresh[i] = r.report(t, sev.ReportData{16: byte(i + 1)})
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := v.VerifyReport(ctx, shared); err != nil {
					t.Errorf("shared report: %v", err)
				}
				if _, err := v.VerifyReport(ctx, fresh[g]); err != nil {
					t.Errorf("fresh report: %v", err)
				}
				if _, err := v.VerifyReport(ctx, &bad); err == nil {
					t.Error("tampered report verified")
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWithoutReportCache preserves the pre-fast-path behaviour: every
// verify pays full KDS traffic.
func TestWithoutReportCache(t *testing.T) {
	r := newRig(t)
	rep := r.report(t, sev.ReportData{10})
	v := NewVerifier(r.client, nil, WithoutReportCache())
	ctx := context.Background()

	if _, err := v.VerifyReport(ctx, rep); err != nil {
		t.Fatal(err)
	}
	cold := r.hits.Load()
	if _, err := v.VerifyReport(ctx, rep); err != nil {
		t.Fatal(err)
	}
	if r.hits.Load() == cold {
		t.Error("verifier without report cache skipped KDS traffic")
	}
}

// TestTCBFloor: a verifier with a raised TCB floor rejects reports from
// platforms running older SNP firmware (platform-level rollback defence).
func TestTCBFloor(t *testing.T) {
	r := newRig(t) // chip TCB = 2
	rep := r.report(t, sev.ReportData{})

	current := NewVerifier(r.client, nil, WithMinTCB(2))
	if _, err := current.VerifyReport(context.Background(), rep); err != nil {
		t.Errorf("TCB at floor rejected: %v", err)
	}
	raised := NewVerifier(r.client, nil, WithMinTCB(3))
	if _, err := raised.VerifyReport(context.Background(), rep); !errors.Is(err, ErrTCBTooOld) {
		t.Errorf("err = %v, want ErrTCBTooOld", err)
	}
}
