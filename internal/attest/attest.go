// Package attest is Revelio's verifier library: everything a relying
// party (the SP node, the web extension, an auditor) does with an
// attestation report (§5.3, §5.3.2).
//
// Verification is the five-step pipeline the paper describes: fetch the
// ARK/ASK chain and the VCEK from the KDS, validate the certificate
// chain, check the VCEK's embedded chip identity against the report,
// verify the report's signature, and finally judge the measurement
// against a trust policy (hard-coded golden values or a trusted
// registry). Bundles add the REPORT_DATA binding between a report and a
// payload (public key or CSR).
package attest

import (
	"context"
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"revelio/attestation"
	"revelio/internal/amdsp"
	"revelio/internal/measure"
	"revelio/internal/sev"
)

// The package's failure modes are the SDK's shared error taxonomy
// (revelio/attestation): the same sentinel an errors.Is caller matches
// here is what the public facade, ratls, certmgr and fleet surface, so
// a failure classified at this layer stays classified all the way up.
var (
	// ErrUntrustedMeasurement reports a valid report whose measurement no
	// trust policy accepts.
	ErrUntrustedMeasurement = attestation.ErrUntrustedMeasurement
	// ErrRevoked reports a measurement the trust policy explicitly
	// revoked (as against one it never trusted).
	ErrRevoked = attestation.ErrRevoked
	// ErrChipNotAllowed reports a report from a chip outside the
	// allow-list (the SP node's impersonation defence, §5.3.1).
	ErrChipNotAllowed = attestation.ErrChipNotAllowed
	// ErrChainInvalid reports a VCEK that does not chain to the ARK.
	ErrChainInvalid = attestation.ErrChainInvalid
	// ErrIdentityMismatch reports a VCEK certificate whose embedded chip
	// identity disagrees with the report.
	ErrIdentityMismatch = attestation.ErrIdentityMismatch
	// ErrReportDataMismatch reports a bundle whose payload hash is not
	// the report's REPORT_DATA.
	ErrReportDataMismatch = attestation.ErrBindingMismatch
	// ErrTCBTooOld reports a platform running SNP firmware below the
	// verifier's floor — the firmware-level rollback defence.
	ErrTCBTooOld = attestation.ErrTCBTooOld
	// ErrEvidenceExpired reports evidence whose proving chain is out of
	// its validity window at verification time.
	ErrEvidenceExpired = attestation.ErrEvidenceExpired
)

// TrustPolicy decides whether a measurement is a golden value.
// *registry.Registry implements it; StaticGolden is the hard-coded
// alternative (§5.3: "hard-coded values planted on the VMs at build
// time"). It is the SDK-wide attestation.TrustPolicy contract.
type TrustPolicy = attestation.TrustPolicy

// CertSource supplies the VCEK and ASK/ARK certificates that
// authenticate a report — the seam that used to be a hard *kds.Client
// dependency. *kds.Client satisfies it; so do offline bundles and test
// doubles.
type CertSource = attestation.CertSource

// StaticGolden is a fixed set of golden measurements.
type StaticGolden map[measure.Measurement]struct{}

var _ TrustPolicy = StaticGolden(nil)

// NewStaticGolden builds a policy from measurements.
func NewStaticGolden(ms ...measure.Measurement) StaticGolden {
	g := make(StaticGolden, len(ms))
	for _, m := range ms {
		g[m] = struct{}{}
	}
	return g
}

// IsTrusted implements TrustPolicy.
func (g StaticGolden) IsTrusted(m measure.Measurement) bool {
	_, ok := g[m]
	return ok
}

// Verifier validates attestation reports end to end.
//
// Positive verifications are memoized in two sharded proof caches — one
// keyed by report digest (skips the whole chain walk + ECDSA signature
// check for already-proven reports) and one keyed by VCEK DER digest
// (skips just the chain walk when a fresh report arrives under a known
// VCEK, the warm-session case). Policy judgments (TCB floor, chip
// allow-list, measurement trust) are re-run on every hit, so a registry
// revocation fails a cached report immediately. Failures are never
// cached.
type Verifier struct {
	source CertSource
	policy TrustPolicy
	chips  map[sev.ChipID]struct{} // nil = any chip
	minTCB uint64
	now    func() time.Time

	reports   *proofCache // report digest -> proof; nil = disabled
	chains    *proofCache // VCEK DER digest -> proof; nil = disabled
	cacheSize int
	policyRev atomic.Uint64
}

// Option configures a Verifier.
type Option func(*Verifier)

// WithChipAllowList restricts acceptable chips.
func WithChipAllowList(ids ...sev.ChipID) Option {
	return func(v *Verifier) {
		v.chips = make(map[sev.ChipID]struct{}, len(ids))
		for _, id := range ids {
			v.chips[id] = struct{}{}
		}
	}
}

// WithClock injects a test clock for certificate validity checks.
func WithClock(now func() time.Time) Option { return func(v *Verifier) { v.now = now } }

// WithMinTCB sets a floor on the platform's SNP firmware version: reports
// from chips whose TCB is older are rejected even if everything else
// checks out. A verifier raises the floor after AMD ships a firmware fix,
// closing the platform-level rollback window that golden-measurement
// revocation alone cannot (the VM image can be current while the
// firmware underneath it is not).
func WithMinTCB(tcb uint64) Option { return func(v *Verifier) { v.minTCB = tcb } }

// WithReportCache bounds the verified-report and VCEK-chain proof caches
// (default DefaultReportCacheSize entries each). A non-positive n also
// selects the default — use WithoutReportCache to disable caching.
func WithReportCache(n int) Option { return func(v *Verifier) { v.cacheSize = n } }

// WithoutReportCache disables proof caching entirely: every VerifyReport
// re-runs the full cryptographic pipeline. This is the pre-fast-path
// behaviour, kept for benchmarking the cold path.
func WithoutReportCache() Option { return func(v *Verifier) { v.cacheSize = -1 } }

// NewVerifier creates a verifier fetching certificates from source
// (typically a *kds.Client, but any CertSource works) and judging
// measurements with policy. Proof caching is on by default; see
// WithoutReportCache.
func NewVerifier(source CertSource, policy TrustPolicy, opts ...Option) *Verifier {
	v := &Verifier{source: source, policy: policy, now: time.Now}
	for _, o := range opts {
		o(v)
	}
	if v.cacheSize >= 0 {
		v.reports = newProofCache(v.cacheSize)
		v.chains = newProofCache(v.cacheSize)
	}
	return v
}

// InvalidatePolicy drops every cached proof by bumping the verifier's
// policy revision; the next verification of any evidence re-runs full
// cryptography. Call it when something the cached proofs depend on
// changes out from under the verifier (e.g. the injected clock moves past
// certificate validity). Ordinary policy mutations — registry votes and
// revocations, allow-list membership — do NOT need invalidation: policy
// is re-judged on every cache hit.
func (v *Verifier) InvalidatePolicy() { v.policyRev.Add(1) }

// PolicyRevision returns the current policy revision. Fast-path layers
// stacked above the verifier (ratls.PeerVerifier's certificate memo) key
// their own entries on it so InvalidatePolicy cascades through them.
func (v *Verifier) PolicyRevision() uint64 { return v.policyRev.Load() }

// Now returns the verifier's notion of the current time (the injected
// WithClock, or the wall clock). Fast-path layers bound their memos with
// it so cached and uncached verification agree about certificate expiry.
func (v *Verifier) Now() time.Time { return v.now() }

// CheckPolicy re-judges an already-authenticated report against the
// verifier's current policy: TCB floor, chip allow-list, and measurement
// trust. It performs no cryptography, so cached fast paths run it on
// every hit — policy changes take effect immediately even for proven
// evidence.
func (v *Verifier) CheckPolicy(report *sev.Report) error {
	if report.TCBVersion < v.minTCB {
		return fmt.Errorf("%w: have %d, need %d", ErrTCBTooOld, report.TCBVersion, v.minTCB)
	}
	if v.chips != nil {
		if _, ok := v.chips[report.ChipID]; !ok {
			return ErrChipNotAllowed
		}
	}
	// JudgeMeasurement distinguishes revocation from plain distrust when
	// the policy can (the trusted registry's RevocationChecker).
	return attestation.JudgeMeasurement(v.policy, report.Measurement)
}

// Result is a successfully verified report plus the evidence used.
type Result struct {
	Report *sev.Report
	VCEK   *x509.Certificate
}

// VerifyReport runs the full verification pipeline on a parsed report.
//
// Fast path: if this exact report (every signed byte plus the signature)
// was already proven at the current policy revision, the chain walk and
// ECDSA checks are skipped and only the policy judgment re-runs. A
// tampered report hashes to a different key, misses the cache, and fails
// in the full pipeline — the caches are provably fail-closed.
func (v *Verifier) VerifyReport(ctx context.Context, report *sev.Report) (*Result, error) {
	rev := v.policyRev.Load()
	now := v.now()
	var rkey proofKey
	if v.reports != nil {
		rkey = reportProofKey(report)
		if p, ok := v.reports.get(rkey, rev, now); ok {
			if err := v.CheckPolicy(report); err != nil {
				return nil, err
			}
			return &Result{Report: report, VCEK: p.vcek}, nil
		}
	}

	vcekCert, err := v.source.VCEK(ctx, report.ChipID, report.TCBVersion)
	if err != nil {
		return nil, fmt.Errorf("attest: fetch vcek: %w", err)
	}
	// Classify expiry before the chain walk so out-of-validity evidence
	// maps to ErrEvidenceExpired rather than a generic chain failure.
	if now.After(vcekCert.NotAfter) {
		return nil, fmt.Errorf("%w: VCEK expired %s", ErrEvidenceExpired, vcekCert.NotAfter.Format(time.RFC3339))
	}

	// Chain walk, skipped when this exact VCEK DER was already proven at
	// this policy revision (a fresh nonce-bound report from a known node
	// pays only the signature check — the warm-session case). The ASK/ARK
	// chain is only fetched when the walk actually runs. Proofs expire at
	// the earliest NotAfter of the whole proving chain, so a cached proof
	// never outlives any validity check the walk performed.
	var (
		ckey        proofKey
		chainProof  *proof
		chainProven bool
	)
	notAfter := vcekCert.NotAfter
	if v.chains != nil {
		ckey = sha256.Sum256(vcekCert.Raw)
		chainProof, chainProven = v.chains.get(ckey, rev, now)
	}
	if chainProven {
		notAfter = chainProof.notAfter
	} else {
		ask, ark, err := v.source.CertChain(ctx)
		if err != nil {
			return nil, fmt.Errorf("attest: fetch cert chain: %w", err)
		}
		roots := x509.NewCertPool()
		roots.AddCert(ark)
		inters := x509.NewCertPool()
		inters.AddCert(ask)
		if _, err := vcekCert.Verify(x509.VerifyOptions{
			Roots:         roots,
			Intermediates: inters,
			CurrentTime:   now,
			KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
		}); err != nil {
			var invalid x509.CertificateInvalidError
			if errors.As(err, &invalid) && invalid.Reason == x509.Expired {
				return nil, fmt.Errorf("%w: %v", ErrEvidenceExpired, err)
			}
			return nil, fmt.Errorf("%w: %v", ErrChainInvalid, err)
		}
		if ask.NotAfter.Before(notAfter) {
			notAfter = ask.NotAfter
		}
		if ark.NotAfter.Before(notAfter) {
			notAfter = ark.NotAfter
		}
	}

	chipID, tcb, err := amdsp.VCEKIdentity(vcekCert)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIdentityMismatch, err)
	}
	if chipID != report.ChipID || tcb != report.TCBVersion {
		return nil, ErrIdentityMismatch
	}
	if !chainProven && v.chains != nil {
		v.chains.put(&proof{key: ckey, vcek: vcekCert, rev: rev, notAfter: notAfter})
	}

	pub, ok := vcekCert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: VCEK key type %T", ErrChainInvalid, vcekCert.PublicKey)
	}
	if err := report.Verify(pub); err != nil {
		return nil, fmt.Errorf("attest: %w", err)
	}

	if err := v.CheckPolicy(report); err != nil {
		return nil, err
	}
	if v.reports != nil {
		v.reports.put(&proof{key: rkey, vcek: vcekCert, rev: rev, notAfter: notAfter})
	}
	return &Result{Report: report, VCEK: vcekCert}, nil
}

// VerifyRaw parses and verifies a serialized report.
func (v *Verifier) VerifyRaw(ctx context.Context, raw []byte) (*Result, error) {
	var report sev.Report
	if err := report.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	return v.VerifyReport(ctx, &report)
}

// Bundle is the report-plus-payload unit Revelio's protocols ship over
// HTTP: the payload (a public key, a CSR, an encrypted TLS key) is bound
// to the report via REPORT_DATA = SHA-512(payload).
type Bundle struct {
	ReportRaw []byte `json:"report"`
	Payload   []byte `json:"payload"`
}

// NewBundle serializes a report around its payload.
func NewBundle(report *sev.Report, payload []byte) (*Bundle, error) {
	raw, err := report.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &Bundle{ReportRaw: raw, Payload: payload}, nil
}

// Encode renders the bundle as JSON for transport.
func (b *Bundle) Encode() ([]byte, error) {
	out, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("attest: encode bundle: %w", err)
	}
	return out, nil
}

// DecodeBundle parses a JSON bundle.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("attest: decode bundle: %w", err)
	}
	return &b, nil
}

// VerifyBundle verifies the bundle's report and the REPORT_DATA binding
// to its payload, returning the verification result.
func (v *Verifier) VerifyBundle(ctx context.Context, b *Bundle, hashOf func([]byte) sev.ReportData) (*Result, error) {
	var report sev.Report
	if err := report.UnmarshalBinary(b.ReportRaw); err != nil {
		return nil, err
	}
	if report.ReportData != hashOf(b.Payload) {
		return nil, ErrReportDataMismatch
	}
	return v.VerifyReport(ctx, &report)
}
