// Package attest is Revelio's verifier library: everything a relying
// party (the SP node, the web extension, an auditor) does with an
// attestation report (§5.3, §5.3.2).
//
// Verification is the five-step pipeline the paper describes: fetch the
// ARK/ASK chain and the VCEK from the KDS, validate the certificate
// chain, check the VCEK's embedded chip identity against the report,
// verify the report's signature, and finally judge the measurement
// against a trust policy (hard-coded golden values or a trusted
// registry). Bundles add the REPORT_DATA binding between a report and a
// payload (public key or CSR).
package attest

import (
	"context"
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"revelio/internal/amdsp"
	"revelio/internal/kds"
	"revelio/internal/measure"
	"revelio/internal/sev"
)

var (
	// ErrUntrustedMeasurement reports a valid report whose measurement no
	// trust policy accepts.
	ErrUntrustedMeasurement = errors.New("attest: measurement not trusted")
	// ErrChipNotAllowed reports a report from a chip outside the
	// allow-list (the SP node's impersonation defence, §5.3.1).
	ErrChipNotAllowed = errors.New("attest: chip not in allow-list")
	// ErrChainInvalid reports a VCEK that does not chain to the ARK.
	ErrChainInvalid = errors.New("attest: VCEK certificate chain invalid")
	// ErrIdentityMismatch reports a VCEK certificate whose embedded chip
	// identity disagrees with the report.
	ErrIdentityMismatch = errors.New("attest: VCEK identity does not match report")
	// ErrReportDataMismatch reports a bundle whose payload hash is not
	// the report's REPORT_DATA.
	ErrReportDataMismatch = errors.New("attest: REPORT_DATA does not bind payload")
	// ErrTCBTooOld reports a platform running SNP firmware below the
	// verifier's floor — the firmware-level rollback defence.
	ErrTCBTooOld = errors.New("attest: platform TCB below required minimum")
)

// TrustPolicy decides whether a measurement is a golden value.
// *registry.Registry implements it; StaticGolden is the hard-coded
// alternative (§5.3: "hard-coded values planted on the VMs at build
// time").
type TrustPolicy interface {
	IsTrusted(m measure.Measurement) bool
}

// StaticGolden is a fixed set of golden measurements.
type StaticGolden map[measure.Measurement]struct{}

var _ TrustPolicy = StaticGolden(nil)

// NewStaticGolden builds a policy from measurements.
func NewStaticGolden(ms ...measure.Measurement) StaticGolden {
	g := make(StaticGolden, len(ms))
	for _, m := range ms {
		g[m] = struct{}{}
	}
	return g
}

// IsTrusted implements TrustPolicy.
func (g StaticGolden) IsTrusted(m measure.Measurement) bool {
	_, ok := g[m]
	return ok
}

// Verifier validates attestation reports end to end.
type Verifier struct {
	kds    *kds.Client
	policy TrustPolicy
	chips  map[sev.ChipID]struct{} // nil = any chip
	minTCB uint64
	now    func() time.Time
}

// Option configures a Verifier.
type Option func(*Verifier)

// WithChipAllowList restricts acceptable chips.
func WithChipAllowList(ids ...sev.ChipID) Option {
	return func(v *Verifier) {
		v.chips = make(map[sev.ChipID]struct{}, len(ids))
		for _, id := range ids {
			v.chips[id] = struct{}{}
		}
	}
}

// WithClock injects a test clock for certificate validity checks.
func WithClock(now func() time.Time) Option { return func(v *Verifier) { v.now = now } }

// WithMinTCB sets a floor on the platform's SNP firmware version: reports
// from chips whose TCB is older are rejected even if everything else
// checks out. A verifier raises the floor after AMD ships a firmware fix,
// closing the platform-level rollback window that golden-measurement
// revocation alone cannot (the VM image can be current while the
// firmware underneath it is not).
func WithMinTCB(tcb uint64) Option { return func(v *Verifier) { v.minTCB = tcb } }

// NewVerifier creates a verifier fetching certificates from kdsClient and
// judging measurements with policy.
func NewVerifier(kdsClient *kds.Client, policy TrustPolicy, opts ...Option) *Verifier {
	v := &Verifier{kds: kdsClient, policy: policy, now: time.Now}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Result is a successfully verified report plus the evidence used.
type Result struct {
	Report *sev.Report
	VCEK   *x509.Certificate
}

// VerifyReport runs the full verification pipeline on a parsed report.
func (v *Verifier) VerifyReport(ctx context.Context, report *sev.Report) (*Result, error) {
	ask, ark, err := v.kds.CertChain(ctx)
	if err != nil {
		return nil, fmt.Errorf("attest: fetch cert chain: %w", err)
	}
	vcekCert, err := v.kds.VCEK(ctx, report.ChipID, report.TCBVersion)
	if err != nil {
		return nil, fmt.Errorf("attest: fetch vcek: %w", err)
	}

	roots := x509.NewCertPool()
	roots.AddCert(ark)
	inters := x509.NewCertPool()
	inters.AddCert(ask)
	if _, err := vcekCert.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: inters,
		CurrentTime:   v.now(),
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChainInvalid, err)
	}

	chipID, tcb, err := amdsp.VCEKIdentity(vcekCert)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIdentityMismatch, err)
	}
	if chipID != report.ChipID || tcb != report.TCBVersion {
		return nil, ErrIdentityMismatch
	}

	pub, ok := vcekCert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: VCEK key type %T", ErrChainInvalid, vcekCert.PublicKey)
	}
	if err := report.Verify(pub); err != nil {
		return nil, fmt.Errorf("attest: %w", err)
	}

	if report.TCBVersion < v.minTCB {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTCBTooOld, report.TCBVersion, v.minTCB)
	}
	if v.chips != nil {
		if _, ok := v.chips[report.ChipID]; !ok {
			return nil, ErrChipNotAllowed
		}
	}
	if v.policy != nil && !v.policy.IsTrusted(report.Measurement) {
		return nil, fmt.Errorf("%w: %s", ErrUntrustedMeasurement, report.Measurement)
	}
	return &Result{Report: report, VCEK: vcekCert}, nil
}

// VerifyRaw parses and verifies a serialized report.
func (v *Verifier) VerifyRaw(ctx context.Context, raw []byte) (*Result, error) {
	var report sev.Report
	if err := report.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	return v.VerifyReport(ctx, &report)
}

// Bundle is the report-plus-payload unit Revelio's protocols ship over
// HTTP: the payload (a public key, a CSR, an encrypted TLS key) is bound
// to the report via REPORT_DATA = SHA-512(payload).
type Bundle struct {
	ReportRaw []byte `json:"report"`
	Payload   []byte `json:"payload"`
}

// NewBundle serializes a report around its payload.
func NewBundle(report *sev.Report, payload []byte) (*Bundle, error) {
	raw, err := report.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &Bundle{ReportRaw: raw, Payload: payload}, nil
}

// Encode renders the bundle as JSON for transport.
func (b *Bundle) Encode() ([]byte, error) {
	out, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("attest: encode bundle: %w", err)
	}
	return out, nil
}

// DecodeBundle parses a JSON bundle.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("attest: decode bundle: %w", err)
	}
	return &b, nil
}

// VerifyBundle verifies the bundle's report and the REPORT_DATA binding
// to its payload, returning the verification result.
func (v *Verifier) VerifyBundle(ctx context.Context, b *Bundle, hashOf func([]byte) sev.ReportData) (*Result, error) {
	var report sev.Report
	if err := report.UnmarshalBinary(b.ReportRaw); err != nil {
		return nil, err
	}
	if report.ReportData != hashOf(b.Payload) {
		return nil, ErrReportDataMismatch
	}
	return v.VerifyReport(ctx, &report)
}
