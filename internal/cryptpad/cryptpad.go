// Package cryptpad implements the end-to-end-encrypted collaboration
// suite of the paper's first use case (§4.1): a pad server that only ever
// stores ciphertext, and a client that holds the pad key — derived from
// the share link and never sent to the server.
//
// The server alone cannot read or undetectably modify pad content; what
// it *can* do without Revelio is serve malicious client code or silently
// drop/reorder updates — which is exactly the residual trust gap
// Revelio's attestation of the server VM closes.
package cryptpad

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"revelio/internal/kdf"
)

var (
	// ErrNoSuchPad reports a missing pad.
	ErrNoSuchPad = errors.New("cryptpad: no such pad")
	// ErrVersionConflict reports a stale optimistic-concurrency write.
	ErrVersionConflict = errors.New("cryptpad: version conflict")
	// ErrBadShareLink reports an unparseable share link.
	ErrBadShareLink = errors.New("cryptpad: bad share link")
	// ErrDecrypt reports undecryptable pad content (wrong key or
	// server-side tampering).
	ErrDecrypt = errors.New("cryptpad: cannot decrypt pad content")
)

// padRecord is the server-side state: ciphertext only.
type padRecord struct {
	ciphertext []byte
	version    uint64
}

// Server stores encrypted pads. It implements http.Handler:
//
//	GET  /pad/{id}            -> {"version":n,"ciphertext":"base64"}
//	PUT  /pad/{id}?version=n  -> store if version matches (0 = create)
type Server struct {
	mu   sync.Mutex
	pads map[string]*padRecord
}

var _ http.Handler = (*Server)(nil)

// NewServer creates an empty pad server.
func NewServer() *Server {
	return &Server{pads: make(map[string]*padRecord)}
}

// Get returns the ciphertext and version of a pad.
func (s *Server) Get(id string) ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.pads[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoSuchPad, id)
	}
	return append([]byte(nil), rec.ciphertext...), rec.version, nil
}

// Put stores ciphertext if expectedVersion matches the current version
// (0 creates), returning the new version.
func (s *Server) Put(id string, ciphertext []byte, expectedVersion uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.pads[id]
	if !ok {
		if expectedVersion != 0 {
			return 0, fmt.Errorf("%w: %q", ErrNoSuchPad, id)
		}
		s.pads[id] = &padRecord{ciphertext: append([]byte(nil), ciphertext...), version: 1}
		return 1, nil
	}
	if rec.version != expectedVersion {
		return 0, fmt.Errorf("%w: have %d, got %d", ErrVersionConflict, rec.version, expectedVersion)
	}
	rec.ciphertext = append([]byte(nil), ciphertext...)
	rec.version++
	return rec.version, nil
}

// Snapshot serializes all pads (for the sealed persistent volume).
func (s *Server) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type entry struct {
		ID         string `json:"id"`
		Ciphertext []byte `json:"ciphertext"`
		Version    uint64 `json:"version"`
	}
	out := make([]entry, 0, len(s.pads))
	for id, rec := range s.pads {
		out = append(out, entry{ID: id, Ciphertext: rec.ciphertext, Version: rec.version})
	}
	return json.Marshal(out)
}

// Restore loads a Snapshot.
func (s *Server) Restore(data []byte) error {
	var entries []struct {
		ID         string `json:"id"`
		Ciphertext []byte `json:"ciphertext"`
		Version    uint64 `json:"version"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("cryptpad: restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pads = make(map[string]*padRecord, len(entries))
	for _, e := range entries {
		s.pads[e.ID] = &padRecord{ciphertext: e.Ciphertext, version: e.Version}
	}
	return nil
}

type padWire struct {
	Version    uint64 `json:"version"`
	Ciphertext []byte `json:"ciphertext"`
}

// ServeHTTP implements the pad HTTP API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id, ok := strings.CutPrefix(r.URL.Path, "/pad/")
	if !ok || id == "" {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet:
		ct, version, err := s.Get(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(padWire{Version: version, Ciphertext: ct})
	case http.MethodPut:
		var expected uint64
		if v := r.URL.Query().Get("version"); v != "" {
			if _, err := fmt.Sscanf(v, "%d", &expected); err != nil {
				http.Error(w, "bad version", http.StatusBadRequest)
				return
			}
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
		if err != nil {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		version, err := s.Put(id, body, expected)
		switch {
		case errors.Is(err, ErrVersionConflict):
			http.Error(w, err.Error(), http.StatusConflict)
			return
		case errors.Is(err, ErrNoSuchPad):
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]uint64{"version": version})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Pad is a client-side handle: id plus the secret key that never leaves
// the clients.
type Pad struct {
	ID  string
	key []byte
}

// NewPad creates a pad handle with a fresh random id and key.
func NewPad() (*Pad, error) {
	raw := make([]byte, 16+32)
	if _, err := rand.Read(raw); err != nil {
		return nil, fmt.Errorf("cryptpad: entropy: %w", err)
	}
	return &Pad{
		ID:  base64.RawURLEncoding.EncodeToString(raw[:16]),
		key: raw[16:],
	}, nil
}

// ShareLink renders the pad handle as a CryptPad-style link whose key
// lives in the URL fragment — the part a browser never sends to the
// server.
func (p *Pad) ShareLink(host string) string {
	return "https://" + host + "/pad/" + p.ID + "#" + base64.RawURLEncoding.EncodeToString(p.key)
}

// ParseShareLink reconstructs a pad handle from a share link.
func ParseShareLink(link string) (*Pad, error) {
	hashIdx := strings.IndexByte(link, '#')
	if hashIdx < 0 {
		return nil, fmt.Errorf("%w: no fragment", ErrBadShareLink)
	}
	key, err := base64.RawURLEncoding.DecodeString(link[hashIdx+1:])
	if err != nil || len(key) != 32 {
		return nil, fmt.Errorf("%w: bad key", ErrBadShareLink)
	}
	padIdx := strings.Index(link, "/pad/")
	if padIdx < 0 {
		return nil, fmt.Errorf("%w: no pad path", ErrBadShareLink)
	}
	id := link[padIdx+len("/pad/") : hashIdx]
	if id == "" {
		return nil, fmt.Errorf("%w: empty id", ErrBadShareLink)
	}
	return &Pad{ID: id, key: key}, nil
}

// Seal encrypts plaintext content at a version with the pad key
// (AES-256-GCM; the version is authenticated as associated data, so the
// server cannot replay old content under a new version).
func (p *Pad) Seal(plaintext []byte, version uint64) ([]byte, error) {
	aead, err := p.aead()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("cryptpad: nonce: %w", err)
	}
	var ad [8]byte
	binary.LittleEndian.PutUint64(ad[:], version)
	out := append([]byte(nil), nonce...)
	return aead.Seal(out, nonce, plaintext, ad[:]), nil
}

// Open decrypts ciphertext produced by Seal at the same version.
func (p *Pad) Open(ciphertext []byte, version uint64) ([]byte, error) {
	aead, err := p.aead()
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrDecrypt
	}
	var ad [8]byte
	binary.LittleEndian.PutUint64(ad[:], version)
	pt, err := aead.Open(nil, ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():], ad[:])
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

func (p *Pad) aead() (cipher.AEAD, error) {
	key, err := kdf.Derive(sha256.New, p.key, nil, []byte("cryptpad-content"), 32)
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
