package cryptpad

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPadRoundTripViaServerAPI(t *testing.T) {
	server := NewServer()
	pad, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("meeting notes: launch on tuesday")
	ct, err := pad.Seal(content, 1)
	if err != nil {
		t.Fatal(err)
	}
	version, err := server.Put(pad.ID, ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Errorf("version = %d, want 1", version)
	}

	// A collaborator with the share link reads the pad.
	link := pad.ShareLink("pad.example.org")
	other, err := ParseShareLink(link)
	if err != nil {
		t.Fatalf("ParseShareLink: %v", err)
	}
	gotCT, gotVersion, err := server.Get(other.ID)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := other.Open(gotCT, gotVersion)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(pt, content) {
		t.Errorf("decrypted %q, want %q", pt, content)
	}
}

func TestServerNeverSeesPlaintext(t *testing.T) {
	server := NewServer()
	pad, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("SECRET-PLAINTEXT-MARKER")
	ct, err := pad.Seal(secret, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Put(pad.ID, ct, 0); err != nil {
		t.Fatal(err)
	}
	// The honest-but-curious (or malicious) server inspects everything it
	// stores.
	stored, _, err := server.Get(pad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(stored, secret) {
		t.Error("plaintext visible in server storage")
	}
	snap, err := server.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(snap, secret) {
		t.Error("plaintext visible in snapshot")
	}
}

func TestServerTamperDetected(t *testing.T) {
	server := NewServer()
	pad, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := pad.Seal([]byte("v1 content"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Put(pad.ID, ct, 0); err != nil {
		t.Fatal(err)
	}
	// Malicious server flips a ciphertext byte.
	stored, version, err := server.Get(pad.ID)
	if err != nil {
		t.Fatal(err)
	}
	stored[len(stored)-1] ^= 1
	if _, err := pad.Open(stored, version); !errors.Is(err, ErrDecrypt) {
		t.Errorf("err = %v, want ErrDecrypt", err)
	}
}

// TestVersionReplayDetected: the server cannot serve stale content under
// a newer version number because the version is authenticated data.
func TestVersionReplayDetected(t *testing.T) {
	pad, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	v1, err := pad.Seal([]byte("old"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pad.Open(v1, 2); !errors.Is(err, ErrDecrypt) {
		t.Errorf("replayed version: err = %v, want ErrDecrypt", err)
	}
}

func TestOptimisticConcurrency(t *testing.T) {
	server := NewServer()
	pad, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	ct1, err := pad.Seal([]byte("a"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Put(pad.ID, ct1, 0); err != nil {
		t.Fatal(err)
	}
	// A concurrent writer with a stale version loses.
	ct2, err := pad.Seal([]byte("b"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Put(pad.ID, ct2, 0); !errors.Is(err, ErrVersionConflict) {
		t.Errorf("stale write: err = %v, want ErrVersionConflict", err)
	}
	if _, err := server.Put(pad.ID, ct2, 1); err != nil {
		t.Errorf("correct version write: %v", err)
	}
	// Updating a non-existent pad with nonzero version fails.
	if _, err := server.Put("ghost", ct2, 3); !errors.Is(err, ErrNoSuchPad) {
		t.Errorf("ghost write: err = %v, want ErrNoSuchPad", err)
	}
}

func TestWrongKeyCannotRead(t *testing.T) {
	padA, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	padB, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := padA.Seal([]byte("private"), 1)
	if err != nil {
		t.Fatal(err)
	}
	padB.ID = padA.ID // same pad id, different key
	if _, err := padB.Open(ct, 1); !errors.Is(err, ErrDecrypt) {
		t.Errorf("wrong key: err = %v, want ErrDecrypt", err)
	}
}

func TestShareLinkParsing(t *testing.T) {
	pad, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	link := pad.ShareLink("host.example")
	if !strings.Contains(link, "#") {
		t.Fatal("share link lacks fragment")
	}
	// The key lives only in the fragment.
	preFragment := link[:strings.IndexByte(link, '#')]
	if strings.Contains(preFragment, string(pad.key)) {
		t.Error("key leaked outside fragment")
	}

	bad := []string{
		"https://h/pad/x",     // no fragment
		"https://h/pad/x#!!!", // bad base64
		"https://h/nothing#" + link[strings.IndexByte(link, '#')+1:], // no pad path
		"https://h/pad/#" + link[strings.IndexByte(link, '#')+1:],    // empty id
	}
	for _, l := range bad {
		if _, err := ParseShareLink(l); !errors.Is(err, ErrBadShareLink) {
			t.Errorf("ParseShareLink(%q): err = %v, want ErrBadShareLink", l, err)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	server := NewServer()
	pad, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := pad.Seal([]byte("persisted"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Put(pad.ID, ct, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := server.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored := NewServer()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	gotCT, version, err := restored.Get(pad.ID)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := pad.Open(gotCT, version)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "persisted" {
		t.Errorf("restored content = %q", pt)
	}
	if err := restored.Restore([]byte("junk")); err == nil {
		t.Error("garbage restore accepted")
	}
}

func TestHTTPAPI(t *testing.T) {
	server := NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	pad, err := NewPad()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := pad.Seal([]byte("over http"), 1)
	if err != nil {
		t.Fatal(err)
	}

	// PUT (create).
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/pad/"+pad.ID, bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}

	// Stale PUT conflicts.
	req2, err := http.NewRequest(http.MethodPut, ts.URL+"/pad/"+pad.ID+"?version=0", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("stale PUT status %d, want 409", resp2.StatusCode)
	}

	// GET returns the ciphertext.
	resp3, err := http.Get(ts.URL + "/pad/" + pad.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp3.Body)
	_ = resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("ciphertext")) {
		t.Errorf("GET body = %s", body)
	}

	// Unknown pad.
	resp4, err := http.Get(ts.URL + "/pad/ghost")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Errorf("ghost GET status %d", resp4.StatusCode)
	}

	// Method not allowed.
	resp5, err := http.Post(ts.URL+"/pad/"+pad.ID, "text/plain", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp5.Body.Close()
	if resp5.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status %d", resp5.StatusCode)
	}
}

func BenchmarkPadSealOpen64K(b *testing.B) {
	pad, err := NewPad()
	if err != nil {
		b.Fatal(err)
	}
	content := bytes.Repeat([]byte("x"), 64*1024)
	b.SetBytes(int64(len(content)))
	for i := 0; i < b.N; i++ {
		ct, err := pad.Seal(content, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pad.Open(ct, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
