// Package netguard implements the guest network policy Revelio bakes into
// the image at build time (§5.1.3): all inbound connections are denied
// except an explicit allow-list (the HTTPS port of the web-facing
// service), which is how the paper removes ssh and every other management
// path into a running VM (requirement F4).
//
// The policy is a rootfs config file — so it is covered by dm-verity and
// reflected in the attestation measurement — and is enforced by the
// guest's connection router at runtime.
package netguard

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Direction of a connection relative to the guest.
type Direction int

// Connection directions.
const (
	Inbound Direction = iota + 1
	Outbound
)

func (d Direction) String() string {
	switch d {
	case Inbound:
		return "inbound"
	case Outbound:
		return "outbound"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// ErrDenied reports a connection rejected by policy.
var ErrDenied = errors.New("netguard: connection denied by policy")

// Policy is the declarative network policy serialized into the image.
type Policy struct {
	// AllowedInboundTCP lists TCP ports that accept inbound connections.
	// Everything not listed — notably 22/ssh — is denied.
	AllowedInboundTCP []uint16 `json:"allowedInboundTcp"`
	// AllowOutbound permits guest-initiated connections (the Boundary
	// Node needs them to reach IC replicas; a standalone CryptPad server
	// does not).
	AllowOutbound bool `json:"allowOutbound"`
}

// DefaultWebPolicy is the policy Revelio images ship by default: HTTPS
// only, no outbound.
func DefaultWebPolicy() Policy {
	return Policy{AllowedInboundTCP: []uint16{443}}
}

// Marshal serializes the policy for inclusion in the rootfs. The encoding
// is deterministic (fixed field order, sorted ports are the caller's
// choice and preserved).
func (p Policy) Marshal() ([]byte, error) {
	out, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("netguard: marshal policy: %w", err)
	}
	return out, nil
}

// ParsePolicy decodes a policy file.
func ParsePolicy(data []byte) (Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return Policy{}, fmt.Errorf("netguard: parse policy: %w", err)
	}
	return p, nil
}

// Firewall enforces a Policy.
type Firewall struct {
	inbound  map[uint16]struct{}
	outbound bool
}

// NewFirewall compiles a policy into an enforcer.
func NewFirewall(p Policy) *Firewall {
	fw := &Firewall{
		inbound:  make(map[uint16]struct{}, len(p.AllowedInboundTCP)),
		outbound: p.AllowOutbound,
	}
	for _, port := range p.AllowedInboundTCP {
		fw.inbound[port] = struct{}{}
	}
	return fw
}

// Check returns nil if a TCP connection in the given direction to the
// given port is permitted, or an error wrapping ErrDenied.
func (f *Firewall) Check(d Direction, port uint16) error {
	switch d {
	case Inbound:
		if _, ok := f.inbound[port]; ok {
			return nil
		}
		return fmt.Errorf("%w: inbound tcp/%d", ErrDenied, port)
	case Outbound:
		if f.outbound {
			return nil
		}
		return fmt.Errorf("%w: outbound tcp/%d", ErrDenied, port)
	default:
		return fmt.Errorf("%w: unknown direction %v", ErrDenied, d)
	}
}
