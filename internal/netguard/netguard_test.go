package netguard

import (
	"errors"
	"strings"
	"testing"
)

func TestDefaultWebPolicyBlocksSSH(t *testing.T) {
	fw := NewFirewall(DefaultWebPolicy())
	if err := fw.Check(Inbound, 443); err != nil {
		t.Errorf("inbound 443: %v", err)
	}
	for _, port := range []uint16{22, 80, 8080, 5900} {
		if err := fw.Check(Inbound, port); !errors.Is(err, ErrDenied) {
			t.Errorf("inbound %d: err = %v, want ErrDenied", port, err)
		}
	}
	if err := fw.Check(Outbound, 443); !errors.Is(err, ErrDenied) {
		t.Errorf("outbound on web policy: err = %v, want ErrDenied", err)
	}
}

func TestOutboundAllowedPolicy(t *testing.T) {
	fw := NewFirewall(Policy{AllowedInboundTCP: []uint16{443}, AllowOutbound: true})
	if err := fw.Check(Outbound, 9000); err != nil {
		t.Errorf("outbound: %v", err)
	}
	if err := fw.Check(Inbound, 9000); !errors.Is(err, ErrDenied) {
		t.Errorf("inbound 9000: err = %v, want ErrDenied", err)
	}
}

func TestEmptyPolicyDeniesEverything(t *testing.T) {
	fw := NewFirewall(Policy{})
	if err := fw.Check(Inbound, 443); !errors.Is(err, ErrDenied) {
		t.Errorf("inbound: err = %v, want ErrDenied", err)
	}
	if err := fw.Check(Outbound, 443); !errors.Is(err, ErrDenied) {
		t.Errorf("outbound: err = %v, want ErrDenied", err)
	}
}

func TestPolicyMarshalRoundTrip(t *testing.T) {
	p := Policy{AllowedInboundTCP: []uint16{443, 8443}, AllowOutbound: true}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.AllowedInboundTCP) != 2 || back.AllowedInboundTCP[1] != 8443 || !back.AllowOutbound {
		t.Errorf("roundtrip = %+v", back)
	}
	// Determinism: same policy, same bytes.
	data2, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("marshal not deterministic")
	}
}

func TestParsePolicyGarbage(t *testing.T) {
	if _, err := ParsePolicy([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCheckUnknownDirection(t *testing.T) {
	fw := NewFirewall(DefaultWebPolicy())
	if err := fw.Check(Direction(0), 443); !errors.Is(err, ErrDenied) {
		t.Errorf("unknown direction: err = %v, want ErrDenied", err)
	}
}

func TestDirectionString(t *testing.T) {
	if Inbound.String() != "inbound" || Outbound.String() != "outbound" {
		t.Error("direction strings wrong")
	}
	if !strings.Contains(Direction(9).String(), "9") {
		t.Error("unknown direction string")
	}
}
