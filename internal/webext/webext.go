// Package webext implements Revelio's browser extension (§5.3.2): the
// component that makes remote attestation seamless for end-users.
//
// Sites are registered with a golden measurement (manually, or learned
// opportunistically via Discover). The first access in a browser session
// is intercepted: the extension fetches the attestation bundle from the
// well-known URL, validates the VCEK chain via the AMD KDS, checks the
// report signature and measurement, and finally binds the session by
// comparing the TLS connection's public key against the key attested in
// REPORT_DATA. Every subsequent request is monitored: if the connection
// is reset onto a different certificate — the malicious-DNS redirect
// attack — the extension flags it before any data flows.
package webext

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"revelio/attestation"
	"revelio/internal/attest"
	"revelio/internal/browser"
	"revelio/internal/measure"
	"revelio/internal/sev"
	"revelio/internal/vm"
)

// The extension's user-facing failure modes. They live inside the SDK's
// attestation taxonomy wherever a taxonomy class applies, so a caller
// holding any webext error can branch with errors.Is against the
// attestation sentinels: a measurement mismatch is a policy rejection
// (attestation.ErrUntrustedMeasurement), a hijacked connection is a
// binding failure (attestation.ErrBindingMismatch), and an
// ErrAttestationFailed wraps whatever taxonomy error the verifier
// produced (ErrRevoked, ErrKDSUnavailable, ErrEvidenceExpired, ...).
var (
	// ErrSiteNotRegistered reports navigation to a domain the extension
	// does not manage (the request proceeds unprotected; callers decide).
	ErrSiteNotRegistered = errors.New("webext: site not registered")
	// ErrAttestationFailed reports a report that failed validation; the
	// verifier's taxonomy error rides along, wrapped.
	ErrAttestationFailed = errors.New("webext: attestation failed")
	// ErrMeasurementMismatch reports a valid report with an unexpected
	// measurement — the client-side analogue of a policy rejection.
	ErrMeasurementMismatch = fmt.Errorf(
		"webext: measurement does not match golden value: %w", attestation.ErrUntrustedMeasurement)
	// ErrConnectionHijacked reports a TLS connection whose public key
	// does not match the attested one — the redirect defence; the
	// evidence no longer binds the session key.
	ErrConnectionHijacked = fmt.Errorf(
		"webext: TLS connection key differs from attested key: %w", attestation.ErrBindingMismatch)
	// ErrNoAttestation reports a site that offers no attestation bundle.
	ErrNoAttestation = errors.New("webext: site offers no attestation endpoint")
)

// WellKnownPath mirrors certmgr.WellKnownPath without importing it (the
// extension is client-side code).
const WellKnownPath = "/.well-known/revelio/attestation"

// Metrics instruments one navigation, feeding Table 3.
type Metrics struct {
	// Attested reports whether this navigation performed a fresh remote
	// attestation (first access in the session).
	Attested bool
	// Total is the end-to-end navigation time.
	Total time.Duration
	// AttestationTime covers bundle fetch + KDS + validation.
	AttestationTime time.Duration
	// ConnValidation covers the per-request connection-context check.
	ConnValidation time.Duration
	// Overridden reports that the user's explicit proceed-anyway decision
	// bypassed attestation for this navigation.
	Overridden bool
}

type site struct {
	golden     measure.Measurement
	attested   bool
	pinnedKey  []byte
	overridden bool
}

// Extension is the web extension instance for one browser.
type Extension struct {
	browser  *browser.Browser
	verifier *attest.Verifier

	mu    sync.Mutex
	sites map[string]*site
}

// New creates an extension in the given browser, validating reports with
// verifier (which wraps the KDS client; enable its cache to model warm
// sessions).
func New(b *browser.Browser, verifier *attest.Verifier) *Extension {
	return &Extension{browser: b, verifier: verifier, sites: make(map[string]*site)}
}

// RegisterSite registers a domain with its expected measurement — the
// manual, secure registration path.
func (e *Extension) RegisterSite(domain string, golden measure.Measurement) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sites[domain] = &site{golden: golden}
}

// ResetSession clears per-session attestation state (a new browser
// context re-attests on first access). Override decisions are also
// per-session and cleared.
func (e *Extension) ResetSession() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.sites {
		s.attested = false
		s.pinnedKey = nil
		s.overridden = false
	}
}

// Override records the user's explicit decision to proceed with a site
// despite a failed check (§5.3.2: "this is flagged to the user and they
// have to make a decision to proceed with or abort the access"). The
// decision lasts for the session; subsequent navigations skip attestation
// and connection validation for this domain.
func (e *Extension) Override(domain string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sites[domain]
	if !ok {
		return fmt.Errorf("%w: %q", ErrSiteNotRegistered, domain)
	}
	s.overridden = true
	return nil
}

// siteConfig is the persisted form of a registration.
type siteConfig struct {
	Domain string `json:"domain"`
	Golden string `json:"golden"`
}

// ExportSites serializes the registered sites (the extension's
// configuration dialogue state) for persistence across browser restarts.
func (e *Extension) ExportSites() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	configs := make([]siteConfig, 0, len(e.sites))
	for domain, s := range e.sites {
		configs = append(configs, siteConfig{Domain: domain, Golden: s.golden.String()})
	}
	sort.Slice(configs, func(i, j int) bool { return configs[i].Domain < configs[j].Domain })
	out, err := json.Marshal(configs)
	if err != nil {
		return nil, fmt.Errorf("webext: export sites: %w", err)
	}
	return out, nil
}

// ImportSites loads registrations produced by ExportSites, replacing the
// current set. Session state starts fresh.
func (e *Extension) ImportSites(data []byte) error {
	var configs []siteConfig
	if err := json.Unmarshal(data, &configs); err != nil {
		return fmt.Errorf("webext: import sites: %w", err)
	}
	sites := make(map[string]*site, len(configs))
	for _, c := range configs {
		golden, err := measure.ParseMeasurement(c.Golden)
		if err != nil {
			return fmt.Errorf("webext: import site %q: %w", c.Domain, err)
		}
		sites[c.Domain] = &site{golden: golden}
	}
	e.mu.Lock()
	e.sites = sites
	e.mu.Unlock()
	return nil
}

// Discover probes a domain for a Revelio attestation endpoint — the
// opportunistic learning path. It returns the measurement the site
// reports so the user can validate it out of band; it does NOT register
// the site.
func (e *Extension) Discover(ctx context.Context, domain string) (measure.Measurement, error) {
	resp, err := e.browser.Get(ctx, domain, WellKnownPath)
	if err != nil {
		// The browser error rides along wrapped, so cancellations and
		// resolution failures stay distinguishable from a site that
		// genuinely lacks the endpoint.
		return measure.Measurement{}, fmt.Errorf("%w: %q: %w", ErrNoAttestation, domain, err)
	}
	if resp.Status != 200 {
		return measure.Measurement{}, fmt.Errorf("%w: %q (status %d)", ErrNoAttestation, domain, resp.Status)
	}
	bundle, err := attest.DecodeBundle(resp.Body)
	if err != nil {
		return measure.Measurement{}, fmt.Errorf("%w: %q: %w", ErrNoAttestation, domain, err)
	}
	res, err := e.verifier.VerifyBundle(ctx, bundle, vm.HashOf)
	if err != nil {
		return measure.Measurement{}, fmt.Errorf("%w: %w", ErrAttestationFailed, err)
	}
	return res.Report.Measurement, nil
}

// Navigate loads https://domain/path through the extension: first access
// in a session attests the site; every access validates the connection.
func (e *Extension) Navigate(ctx context.Context, domain, path string) (*browser.Response, *Metrics, error) {
	start := time.Now()
	e.mu.Lock()
	s, ok := e.sites[domain]
	e.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrSiteNotRegistered, domain)
	}

	metrics := &Metrics{}
	e.mu.Lock()
	overridden := s.overridden
	e.mu.Unlock()
	if overridden {
		// The user chose to proceed without protection; load the page
		// like a plain browser would.
		metrics.Overridden = true
		resp, err := e.browser.Get(ctx, domain, path)
		if err != nil {
			return nil, nil, err
		}
		metrics.Total = time.Since(start)
		return resp, metrics, nil
	}
	if !siteAttested(s, &e.mu) {
		if err := e.attestSite(ctx, domain, s, metrics); err != nil {
			return nil, nil, err
		}
	}

	resp, err := e.browser.Get(ctx, domain, path)
	if err != nil {
		return nil, nil, err
	}

	// Per-request connection validation: the TLS key must still be the
	// attested one.
	t0 := time.Now()
	connKey, err := e.browser.ConnectionPublicKey(domain)
	if err != nil {
		return nil, nil, err
	}
	e.mu.Lock()
	pinned := s.pinnedKey
	e.mu.Unlock()
	if !bytes.Equal(connKey, pinned) {
		return nil, nil, fmt.Errorf("%w: %q", ErrConnectionHijacked, domain)
	}
	metrics.ConnValidation = time.Since(t0)
	metrics.Total = time.Since(start)
	return resp, metrics, nil
}

func siteAttested(s *site, mu *sync.Mutex) bool {
	mu.Lock()
	defer mu.Unlock()
	return s.attested
}

// attestSite performs the fresh-session attestation flow with a
// freshness nonce: the served report must bind both the TLS key and our
// challenge, so a recorded bundle from an earlier (since-compromised)
// boot cannot be replayed.
func (e *Extension) attestSite(ctx context.Context, domain string, s *site, metrics *Metrics) error {
	t0 := time.Now()
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("%w: nonce: %w", ErrAttestationFailed, err)
	}
	resp, err := e.browser.Get(ctx, domain, WellKnownPath+"?nonce="+hex.EncodeToString(nonce))
	if err != nil {
		return fmt.Errorf("%w: fetch bundle: %w", ErrAttestationFailed, err)
	}
	if resp.Status != 200 {
		return fmt.Errorf("%w: %q (status %d)", ErrNoAttestation, domain, resp.Status)
	}
	bundle, err := attest.DecodeBundle(resp.Body)
	if err != nil {
		return fmt.Errorf("%w: decode bundle: %w", ErrAttestationFailed, err)
	}

	// Validate the report: VCEK chain via KDS, signature, and the
	// REPORT_DATA binding to the served TLS public key and our nonce.
	res, err := e.verifier.VerifyBundle(ctx, bundle, func(payload []byte) sev.ReportData {
		return vm.HashOfWithNonce(payload, nonce)
	})
	if err != nil {
		return fmt.Errorf("%w: %w", ErrAttestationFailed, err)
	}
	if res.Report.Measurement != s.golden {
		return fmt.Errorf("%w: got %s", ErrMeasurementMismatch, res.Report.Measurement)
	}

	// The secure connection must terminate inside the attested VM: the
	// TLS connection key equals the attested key.
	connKey, err := e.browser.ConnectionPublicKey(domain)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrAttestationFailed, err)
	}
	if !bytes.Equal(connKey, bundle.Payload) {
		return fmt.Errorf("%w: %q", ErrConnectionHijacked, domain)
	}

	e.mu.Lock()
	s.attested = true
	s.pinnedKey = append([]byte(nil), bundle.Payload...)
	e.mu.Unlock()

	metrics.Attested = true
	metrics.AttestationTime = time.Since(t0)
	return nil
}
