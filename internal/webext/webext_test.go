package webext

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"revelio/internal/acme"
	"revelio/internal/browser"
	"revelio/internal/core"
	"revelio/internal/imagebuild"
	"revelio/internal/measure"

	"revelio/attestation"
)

const domain = "pad.example.org"

func newDeployment(t *testing.T, nodes int) *core.Deployment {
	t.Helper()
	reg := imagebuild.NewRegistry()
	base := imagebuild.PublishUbuntuBase(reg)
	spec := imagebuild.CryptpadSpec(base)
	spec.PersistSize = 256 * 1024
	d, err := core.New(core.Config{
		Spec:     spec,
		Registry: reg,
		Nodes:    nodes,
		Domain:   domain,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if _, err := d.ProvisionCertificates(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := d.StartWeb(func(*core.Node) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("cryptpad"))
		})
	}); err != nil {
		t.Fatal(err)
	}
	return d
}

func newClientSide(t *testing.T, d *core.Deployment, nodeIdx int) (*browser.Browser, *Extension) {
	t.Helper()
	b := browser.New(d.CARootPool(), 0)
	b.Resolve(domain, d.Nodes[nodeIdx].WebAddr())
	ext := New(b, d.Verifier)
	return b, ext
}

func TestNavigateWithAttestation(t *testing.T) {
	d := newDeployment(t, 1)
	_, ext := newClientSide(t, d, 0)
	ext.RegisterSite(domain, d.Golden)

	resp, metrics, err := ext.Navigate(context.Background(), domain, "/")
	if err != nil {
		t.Fatalf("Navigate: %v", err)
	}
	if string(resp.Body) != "cryptpad" {
		t.Errorf("body = %q", resp.Body)
	}
	if !metrics.Attested || metrics.AttestationTime <= 0 {
		t.Errorf("first navigation did not attest: %+v", metrics)
	}

	// Warm session: no re-attestation, but connection still validated.
	_, metrics2, err := ext.Navigate(context.Background(), domain, "/doc")
	if err != nil {
		t.Fatal(err)
	}
	if metrics2.Attested {
		t.Error("second navigation re-attested")
	}
	if metrics2.ConnValidation < 0 {
		t.Error("missing connection validation")
	}
}

func TestNavigateUnregisteredSite(t *testing.T) {
	d := newDeployment(t, 1)
	_, ext := newClientSide(t, d, 0)
	if _, _, err := ext.Navigate(context.Background(), domain, "/"); !errors.Is(err, ErrSiteNotRegistered) {
		t.Errorf("err = %v, want ErrSiteNotRegistered", err)
	}
}

func TestNavigateWrongGolden(t *testing.T) {
	d := newDeployment(t, 1)
	_, ext := newClientSide(t, d, 0)
	var wrong measure.Measurement
	wrong[0] = 0xAA
	ext.RegisterSite(domain, wrong)
	_, _, err := ext.Navigate(context.Background(), domain, "/")
	if !errors.Is(err, ErrMeasurementMismatch) && !errors.Is(err, ErrAttestationFailed) {
		t.Errorf("err = %v, want measurement/attestation failure", err)
	}
}

func TestDiscoverFindsRevelioSite(t *testing.T) {
	d := newDeployment(t, 1)
	_, ext := newClientSide(t, d, 0)
	m, err := ext.Discover(context.Background(), domain)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if m != d.Golden {
		t.Error("discovered measurement differs from golden")
	}
}

func TestDiscoverNonRevelioSite(t *testing.T) {
	d := newDeployment(t, 1)
	b, ext := newClientSide(t, d, 0)

	// A plain HTTPS site with a valid cert but no attestation endpoint.
	plainAddr := startPlainTLS(t, d)
	b.Resolve("plain.example.org", plainAddr)
	if _, err := ext.Discover(context.Background(), "plain.example.org"); !errors.Is(err, ErrNoAttestation) {
		t.Errorf("err = %v, want ErrNoAttestation", err)
	}
}

// startPlainTLS brings up a non-Revelio HTTPS site under the same CA.
func startPlainTLS(t *testing.T, d *core.Deployment) string {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
		Subject:  pkix.Name{CommonName: "plain.example.org"},
		DNSNames: []string{"plain.example.org"},
	}, key)
	if err != nil {
		t.Fatal(err)
	}
	certDER, err := acme.NewClient(d.CA, d.Zone).ObtainCertificate(context.Background(), "plain.example.org", csr)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tlsLn := tls.NewListener(ln, &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{certDER}, PrivateKey: key}},
	})
	server := &http.Server{Handler: http.NotFoundHandler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = server.Serve(tlsLn) }()
	t.Cleanup(func() { _ = server.Close() })
	return ln.Addr().String()
}

// TestRedirectAttackDetected is the §5.3.2 attack: after attestation, a
// malicious service provider (who controls DNS and can obtain fresh
// CA-valid certificates) redirects the domain to a non-Revelio server.
// The browser alone accepts it — the certificate is valid — but the
// extension's per-request connection validation catches the key change.
func TestRedirectAttackDetected(t *testing.T) {
	d := newDeployment(t, 1)
	b, ext := newClientSide(t, d, 0)
	ext.RegisterSite(domain, d.Golden)

	if _, _, err := ext.Navigate(context.Background(), domain, "/"); err != nil {
		t.Fatalf("initial navigation: %v", err)
	}

	// The attacker stands up their own server with a *valid* certificate
	// for the same domain (they control DNS, so they pass DNS-01).
	attackerKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
		Subject:  pkix.Name{CommonName: domain},
		DNSNames: []string{domain},
	}, attackerKey)
	if err != nil {
		t.Fatal(err)
	}
	certDER, err := acme.NewClient(d.CA, d.Zone).ObtainCertificate(context.Background(), domain, csr)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tlsLn := tls.NewListener(ln, &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{certDER}, PrivateKey: attackerKey}},
	})
	attacker := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("phish"))
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = attacker.Serve(tlsLn) }()
	t.Cleanup(func() { _ = attacker.Close() })

	// DNS redirect.
	b.Resolve(domain, ln.Addr().String())

	// A plain browser would happily load the phishing page; the
	// extension must refuse.
	if _, _, err := ext.Navigate(context.Background(), domain, "/login"); !errors.Is(err, ErrConnectionHijacked) {
		t.Errorf("err = %v, want ErrConnectionHijacked", err)
	}
}

func TestResetSessionReattests(t *testing.T) {
	d := newDeployment(t, 1)
	_, ext := newClientSide(t, d, 0)
	ext.RegisterSite(domain, d.Golden)

	if _, m, err := ext.Navigate(context.Background(), domain, "/"); err != nil || !m.Attested {
		t.Fatalf("first: %v %+v", err, m)
	}
	ext.ResetSession()
	if _, m, err := ext.Navigate(context.Background(), domain, "/"); err != nil || !m.Attested {
		t.Errorf("after reset: err=%v attested=%v", err, m.Attested)
	}
}

func TestMultiNodeAllAttestable(t *testing.T) {
	d := newDeployment(t, 3)
	for i := range d.Nodes {
		b := browser.New(d.CARootPool(), 0)
		b.Resolve(domain, d.Nodes[i].WebAddr())
		ext := New(b, d.Verifier)
		ext.RegisterSite(domain, d.Golden)
		if _, m, err := ext.Navigate(context.Background(), domain, "/"); err != nil || !m.Attested {
			t.Errorf("node %d: err=%v metrics=%+v", i, err, m)
		}
	}
}

// §5.3.2: after a flagged failure, the user may explicitly decide to
// proceed — the override is honored for the session and cleared on reset.
func TestUserOverrideProceeds(t *testing.T) {
	d := newDeployment(t, 1)
	_, ext := newClientSide(t, d, 0)
	var wrong measure.Measurement
	wrong[0] = 0xCC
	ext.RegisterSite(domain, wrong)

	if _, _, err := ext.Navigate(context.Background(), domain, "/"); err == nil {
		t.Fatal("mismatched site loaded without override")
	}
	if err := ext.Override(domain); err != nil {
		t.Fatal(err)
	}
	resp, m, err := ext.Navigate(context.Background(), domain, "/")
	if err != nil {
		t.Fatalf("overridden navigation: %v", err)
	}
	if !m.Overridden || m.Attested {
		t.Errorf("metrics = %+v, want overridden and not attested", m)
	}
	if string(resp.Body) != "cryptpad" {
		t.Errorf("body = %q", resp.Body)
	}
	// The decision is per session.
	ext.ResetSession()
	if _, _, err := ext.Navigate(context.Background(), domain, "/"); err == nil {
		t.Error("override survived session reset")
	}
	if err := ext.Override("unregistered.org"); !errors.Is(err, ErrSiteNotRegistered) {
		t.Errorf("override unregistered: err = %v", err)
	}
}

func TestSiteExportImport(t *testing.T) {
	d := newDeployment(t, 1)
	_, ext := newClientSide(t, d, 0)
	ext.RegisterSite(domain, d.Golden)
	ext.RegisterSite("other.example.org", d.Golden)

	data, err := ext.ExportSites()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh extension (new browser profile) imports the config and can
	// attest immediately.
	b2, ext2 := newClientSide(t, d, 0)
	_ = b2
	if err := ext2.ImportSites(data); err != nil {
		t.Fatal(err)
	}
	if _, m, err := ext2.Navigate(context.Background(), domain, "/"); err != nil || !m.Attested {
		t.Errorf("imported site: err=%v metrics=%+v", err, m)
	}

	// Export is deterministic (sorted).
	data2, err := ext2.ExportSites()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("export not deterministic across instances")
	}

	if err := ext2.ImportSites([]byte("junk")); err == nil {
		t.Error("junk import accepted")
	}
	if err := ext2.ImportSites([]byte(`[{"domain":"x","golden":"zz"}]`)); err == nil {
		t.Error("bad golden hex accepted")
	}
}

// TestReplayedBundleRejected: an attacker who recorded a legitimate
// attestation bundle (e.g. from an earlier boot) and serves it verbatim
// fails the extension's freshness challenge — the recorded REPORT_DATA
// cannot bind the extension's fresh nonce.
func TestReplayedBundleRejected(t *testing.T) {
	d := newDeployment(t, 1)
	b, ext := newClientSide(t, d, 0)
	ext.RegisterSite(domain, d.Golden)

	// Record the nonce-less bundle an honest node serves.
	recorded, err := b.Get(context.Background(), domain, WellKnownPath)
	if err != nil || recorded.Status != 200 {
		t.Fatalf("record bundle: %v (%d)", err, recorded.Status)
	}

	// The attacker's server replays the recorded bundle for every
	// request, nonce or not — behind a CA-valid certificate obtained for
	// the same domain (attacker controls DNS).
	attackerKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
		Subject:  pkix.Name{CommonName: domain},
		DNSNames: []string{domain},
	}, attackerKey)
	if err != nil {
		t.Fatal(err)
	}
	certDER, err := acme.NewClient(d.CA, d.Zone).ObtainCertificate(context.Background(), domain, csr)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tlsLn := tls.NewListener(ln, &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{certDER}, PrivateKey: attackerKey}},
	})
	replayer := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write(recorded.Body)
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = replayer.Serve(tlsLn) }()
	t.Cleanup(func() { _ = replayer.Close() })

	b.Resolve(domain, ln.Addr().String())
	_, _, err = ext.Navigate(context.Background(), domain, "/")
	if !errors.Is(err, ErrAttestationFailed) {
		t.Errorf("err = %v, want ErrAttestationFailed (replay must not bind fresh nonce)", err)
	}
}

// TestErrorsMapOntoAttestationTaxonomy: the extension's user-facing
// failure modes are errors.Is-able against the SDK's attestation
// sentinels, so one branch handles verdicts from any layer.
func TestErrorsMapOntoAttestationTaxonomy(t *testing.T) {
	if !errors.Is(ErrMeasurementMismatch, attestation.ErrUntrustedMeasurement) {
		t.Error("ErrMeasurementMismatch is not an attestation.ErrUntrustedMeasurement")
	}
	if !errors.Is(ErrMeasurementMismatch, attestation.ErrPolicyRejected) {
		t.Error("ErrMeasurementMismatch is not an attestation.ErrPolicyRejected")
	}
	if !errors.Is(ErrConnectionHijacked, attestation.ErrBindingMismatch) {
		t.Error("ErrConnectionHijacked is not an attestation.ErrBindingMismatch")
	}
	if !errors.Is(ErrConnectionHijacked, attestation.ErrEvidenceInvalid) {
		t.Error("ErrConnectionHijacked is not an attestation.ErrEvidenceInvalid")
	}
}
