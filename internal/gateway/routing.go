package gateway

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"

	"revelio/internal/fleet"
	"revelio/internal/measure"
)

// ErrNoPolicyUpstreams reports a request for which serving endpoints
// exist but every one is excluded by the routing policy (a hard rule
// constraint or a rolled-back canary measurement). Distinct from
// ErrNoUpstreams (nothing healthy at all) and from load shedding
// (healthy, in-policy, but saturated).
var ErrNoPolicyUpstreams = errors.New("gateway: no upstream endpoint satisfies the routing policy")

// Routing configures the gateway's context-aware policy layer — the
// first of the four routing tiers (policy filter → attestation ejection
// → circuit breaker → least-pending balancing; see DESIGN.md
// "Context-aware routing"). The zero value disables the layer entirely:
// every healthy attested node is eligible for every request, exactly
// the pre-routing behavior.
//
// Rules are hard constraints: a request whose matched rule excludes
// every serving endpoint is refused with 503 (ErrNoPolicyUpstreams)
// rather than routed out of policy. Splits and Canary are soft
// preferences: they steer the configured fraction of traffic when
// preferred nodes are healthy and fall back to the full in-policy set
// when none are — a preference never turns a servable request into a
// failure. The one exception is a rolled-back canary: after auto-
// rollback fires, the canary measurement is excluded as hard as any
// rule, because routing to it would repeat the failure that triggered
// the rollback.
type Routing struct {
	// Rules are evaluated per request in order; the first rule whose
	// PathPrefix matches the request path applies (an empty PathPrefix
	// matches every path, so a catch-all rule goes last). Requests
	// matching no rule are unconstrained.
	Rules []RouteRule
	// Splits expresses a weighted per-provider traffic split for
	// mixed-provider fleets. Unlisted providers receive only fallback
	// traffic.
	Splits []TrafficSplit
	// Canary configures measurement-based canary routing during a
	// staged rollout.
	Canary CanaryConfig
}

// RouteRule constrains which endpoints may serve a class of requests.
// All set constraints must hold (conjunction); zero-valued fields do
// not constrain.
type RouteRule struct {
	// Name labels the rule in documentation and operator tooling.
	Name string
	// PathPrefix selects the requests this rule governs ("" = all).
	PathPrefix string
	// MinTCB, when positive, requires the serving node's chip to report
	// at least this trusted-computing-base version.
	MinTCB uint64
	// Providers, when non-empty, restricts serving to nodes attested by
	// one of the named providers (e.g. "sev-snp").
	Providers []string
	// Localities, when non-empty, restricts serving to nodes in one of
	// the named zones.
	Localities []string
}

// allows reports whether ep satisfies every constraint the rule sets.
func (r *RouteRule) allows(ep fleet.Endpoint) bool {
	if r == nil {
		return true
	}
	if r.MinTCB > 0 && ep.TCB < r.MinTCB {
		return false
	}
	if len(r.Providers) > 0 && !containsString(r.Providers, ep.Provider) {
		return false
	}
	if len(r.Localities) > 0 && !containsString(r.Localities, ep.Locality) {
		return false
	}
	return true
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// TrafficSplit weights one provider's share of steered traffic.
// Effective shares are Weight over the sum of all weights; a deter-
// ministic weighted counter hands each request its preferred provider,
// so observed fractions converge exactly, not just in expectation.
type TrafficSplit struct {
	Provider string
	Weight   uint
}

// CanaryConfig tunes measurement-based canary routing. While a
// StageFirmware rollout is in progress (Snapshot.PriorGolden non-nil),
// nodes running the new golden image are the canary group; Weight
// percent of requests prefer them. Every attempt that lands on a
// canary-measurement node — steered or not — feeds the failure
// accounting, and when the observed failure rate reaches
// MaxFailureRate over at least MinSamples attempts the gateway rolls
// the canary back: it stops routing to the canary measurement (hard,
// until the rollout is committed or aborted) and surfaces the event in
// Stats. Rollback fires exactly once per staged rollout.
type CanaryConfig struct {
	// Weight is the percentage (0–100) of requests steered to canary
	// nodes during a rollout. 0 disables canary routing.
	Weight uint
	// MaxFailureRate is the failure-rate threshold that triggers
	// auto-rollback (default 0.5).
	MaxFailureRate float64
	// MinSamples is the minimum number of canary attempts before the
	// rate is judged (default 20) — a single unlucky request must not
	// roll a healthy image back.
	MinSamples int64
}

func (c CanaryConfig) maxFailureRate() float64 {
	if c.MaxFailureRate <= 0 {
		return 0.5
	}
	return c.MaxFailureRate
}

func (c CanaryConfig) minSamples() int64 {
	if c.MinSamples <= 0 {
		return 20
	}
	return c.MinSamples
}

// decision is one request's routing-policy verdict, computed once per
// request and applied to every pick within it.
type decision struct {
	// rule is the matched hard-constraint rule, nil when none matched.
	rule *RouteRule
	// provider is the split-preferred provider, "" when no split
	// applies.
	provider string
	// canaryMeas, when non-nil, is the staged rollout's canary
	// measurement; preferCanary says which side of the split this
	// request falls on.
	canaryMeas   *measure.Measurement
	preferCanary bool
	// avoid, when non-nil, is a measurement excluded outright — the
	// rolled-back canary.
	avoid *measure.Measurement
}

// router holds the gateway's routing-policy state: the static config
// plus the canary tracking that follows the snapshot's rollout context.
type router struct {
	cfg         Routing
	splitTotal  uint
	splitSeq    atomic.Uint64 // deterministic weighted provider counter
	canarySeq   atomic.Uint64 // deterministic canary-fraction counter
	hasRules    bool
	hasSplits   bool
	canaryOn    bool
	policyDeny  atomic.Int64 // requests refused: policy excluded all endpoints
	canaryTotal atomic.Int64 // attempts on the canary measurement, this rollout
	canaryFails atomic.Int64 // failed attempts on the canary measurement

	mu             sync.Mutex
	staged         bool
	canaryMeas     measure.Measurement
	rolledBack     bool
	rollbacks      int64               // cumulative auto-rollbacks fired
	lastCanaryMeas measure.Measurement // current or last rolled-back canary
	haveCanaryMeas bool
}

func newRouter(cfg Routing) *router {
	rt := &router{
		cfg:       cfg,
		hasRules:  len(cfg.Rules) > 0,
		hasSplits: len(cfg.Splits) > 0,
		canaryOn:  cfg.Canary.Weight > 0,
	}
	for _, s := range cfg.Splits {
		rt.splitTotal += s.Weight
	}
	if rt.splitTotal == 0 {
		rt.hasSplits = false
	}
	return rt
}

// enabled reports whether any routing behavior is configured; when
// false the gateway skips the policy tier entirely.
func (rt *router) enabled() bool {
	return rt.hasRules || rt.hasSplits || rt.canaryOn
}

// observe tracks the snapshot's rollout context. A newly staged rollout
// (PriorGolden flips non-nil, or the staged golden changes) resets the
// canary accounting; the rollout ending (PriorGolden nil — commit or
// abort) clears the staged state and lifts a rollback's exclusion,
// because trust in the canary measurement is then settled by the
// registry (committed: trusted fleet-wide; aborted: revoked, so
// attestation ejection takes over).
func (rt *router) observe(snap fleet.Snapshot) {
	if !rt.canaryOn {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if snap.PriorGolden == nil {
		rt.staged = false
		rt.rolledBack = false
		return
	}
	if rt.staged && rt.canaryMeas == snap.Golden {
		return
	}
	rt.staged = true
	rt.canaryMeas = snap.Golden
	rt.lastCanaryMeas = snap.Golden
	rt.haveCanaryMeas = true
	rt.rolledBack = false
	rt.canaryTotal.Store(0)
	rt.canaryFails.Store(0)
}

// decide computes one request's routing decision from the request path
// and the router's current rollout state.
func (rt *router) decide(path string) decision {
	var d decision
	if rt.hasRules {
		for i := range rt.cfg.Rules {
			if strings.HasPrefix(path, rt.cfg.Rules[i].PathPrefix) {
				d.rule = &rt.cfg.Rules[i]
				break
			}
		}
	}
	if rt.hasSplits {
		n := uint(rt.splitSeq.Add(1) % uint64(rt.splitTotal))
		for _, s := range rt.cfg.Splits {
			if n < s.Weight {
				d.provider = s.Provider
				break
			}
			n -= s.Weight
		}
	}
	if rt.canaryOn {
		rt.mu.Lock()
		if rt.staged {
			m := rt.canaryMeas
			if rt.rolledBack {
				d.avoid = &m
			} else {
				d.canaryMeas = &m
				weight := rt.cfg.Canary.Weight
				if weight > 100 {
					weight = 100
				}
				d.preferCanary = uint(rt.canarySeq.Add(1)%100) < weight
			}
		}
		rt.mu.Unlock()
	}
	return d
}

// recordCanary feeds one attempt's outcome into the canary accounting
// when it landed on the staged canary measurement. It reports whether
// this very attempt tripped the auto-rollback (exactly once per staged
// rollout).
func (rt *router) recordCanary(meas measure.Measurement, failed bool) (rolledBackNow bool) {
	if !rt.canaryOn {
		return false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.staged || rt.rolledBack || meas != rt.canaryMeas {
		return false
	}
	total := rt.canaryTotal.Add(1)
	fails := rt.canaryFails.Load()
	if failed {
		fails = rt.canaryFails.Add(1)
	}
	if total >= rt.cfg.Canary.minSamples() &&
		float64(fails)/float64(total) >= rt.cfg.Canary.maxFailureRate() {
		rt.rolledBack = true
		rt.lastCanaryMeas = rt.canaryMeas
		rt.haveCanaryMeas = true
		rt.rollbacks++
		return true
	}
	return false
}

// snapshotStats copies the router's counters into s.
func (rt *router) snapshotStats(s *Stats) {
	s.PolicyRejected = rt.policyDeny.Load()
	s.CanaryRequests = rt.canaryTotal.Load()
	s.CanaryFailures = rt.canaryFails.Load()
	rt.mu.Lock()
	s.CanaryRollbacks = rt.rollbacks
	s.CanaryRolledBack = rt.rolledBack
	if rt.haveCanaryMeas {
		s.CanaryMeasurement = rt.lastCanaryMeas.String()
	}
	rt.mu.Unlock()
}
