package gateway

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// This file is the gateway's arm of the PR-2 sync.Pool discipline: the
// per-request allocations that dominated the proxy hot path — copy
// buffers, the outbound request shell and its header workspace, the
// per-attempt deadline string, pick and exclusion sets — live in pooled
// scratch reused across requests. Every Get is balanced by a Put on
// every return path (the poolescape analyzer enforces it), and nothing
// pooled is reused while the transport might still reference it (see
// wireScratch.inFlight).

// copyBufSize is the chunk size for pooled body streaming — io.Copy's
// internal default, made explicit so the response path and the probe
// drain share one pool.
const copyBufSize = 32 * 1024

// copyBufPool recycles body-copy buffers. Pointer-to-slice, like the
// dmcrypt sector pool, so Put does not allocate a fresh interface box.
var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, copyBufSize)
		return &b
	},
}

// scratchPool recycles the per-request proxy workspace.
var scratchPool = sync.Pool{
	New: func() any { return &proxyScratch{} },
}

// msTableSize bounds the precomputed millisecond strings. 4096 covers
// every carved per-try budget under the default PerTryTimeout (2000ms)
// with room for generous overrides; larger values fall back to
// strconv.AppendInt into wire scratch.
const msTableSize = 4096

// msTable maps small millisecond counts to their decimal strings, so
// the per-attempt DeadlineHeader rewrite stops allocating a fresh
// string per attempt.
var msTable = func() (t [msTableSize]string) {
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return t
}()

// writerOnly hides every optional interface of the wrapped writer —
// in particular io.ReaderFrom. net/http's ResponseWriter implements
// ReaderFrom, and io.CopyBuffer prefers that path, ignoring the caller
// buffer and allocating its own 32 KiB chunk per request; masking it
// forces the copy through the pooled buffer.
type writerOnly struct{ io.Writer }

// wireScratch is the transport-visible part of the per-request scratch:
// the outbound request shell, its URL and header workspace, and the
// single-value slices backing the headers the gateway owns. It is
// reused across requests only when the previous attempt provably
// finished with the wire (see inFlight).
type wireScratch struct {
	req    http.Request
	url    url.URL
	hdr    http.Header
	dlVal  [1]string // DeadlineHeader value slice
	xffVal [1]string // X-Forwarded-For value slice
	numBuf [20]byte  // strconv.AppendInt fallback workspace
	// inFlight is the taint bit. It is set before the shell is handed to
	// RoundTrip and cleared only at the single provably-clean point: a
	// bodyless request whose response streamed to EOF and closed. After
	// a transport error the write loop may still read the request memory
	// asynchronously, so a wire still marked in flight is abandoned to
	// the garbage collector and the next attempt allocates a fresh one —
	// the failure path pays, the steady path stays zero-alloc.
	inFlight bool
}

// scrub drops the references a finished request left behind so a pooled
// wire retains no body, header values, or URL strings between requests.
// The header map itself is the asset being pooled and survives.
func (w *wireScratch) scrub() {
	w.req = http.Request{}
	w.url = url.URL{}
	w.dlVal[0], w.xffVal[0] = "", ""
	clear(w.hdr)
}

// msText formats a millisecond count without allocating for the common
// range: table hit for small values, pooled AppendInt workspace beyond.
func (w *wireScratch) msText(ms int64) string {
	if ms >= 0 && ms < msTableSize {
		return msTable[ms]
	}
	return string(strconv.AppendInt(w.numBuf[:0], ms, 10))
}

// proxyScratch is the pooled per-request workspace for ServeHTTP: the
// exclusion and candidate sets the retry loop reuses, the
// ReaderFrom-defeating writer wrapper, the per-attempt timer/cancel
// pair, and the transport-visible wire scratch.
type proxyScratch struct {
	excluded []string    // upstreams failed by earlier attempts this request
	picks    []*upstream // pick's candidate workspace
	wo       writerOnly  // body-copy destination, Writer set per response
	wire     *wireScratch

	// tryTimer/tryCancel are the in-flight attempt's per-try clock and
	// context release, parked here after headers arrive so forward does
	// not return a freshly allocated closure; finishAttempt settles them.
	tryTimer  *time.Timer
	tryCancel context.CancelFunc
}

// finishAttempt settles the in-flight attempt's timer and context. Safe
// to call when none is pending; reset calls it too, so a panic path
// (ErrAbortHandler) still releases the try context via the deferred
// reset.
func (sc *proxyScratch) finishAttempt() {
	if sc.tryTimer != nil {
		sc.tryTimer.Stop()
		sc.tryTimer = nil
	}
	if sc.tryCancel != nil {
		sc.tryCancel()
		sc.tryCancel = nil
	}
}

// wireClean marks the wire reusable after a provably clean completion:
// headers succeeded and the body streamed to EOF. Requests that carried
// a body are never marked clean — an early (pre-body-EOF) response
// leaves the transport's write loop with live references — so they
// trade one wire allocation for certainty.
func (sc *proxyScratch) wireClean() {
	if w := sc.wire; w != nil && w.req.Body == nil {
		w.inFlight = false
	}
}

// reset returns the scratch to its pooled state: attempt settled,
// workspaces emptied without shrinking, pointers dropped so nothing
// from the finished request is retained, and a tainted wire abandoned.
func (sc *proxyScratch) reset() {
	sc.finishAttempt()
	sc.excluded = sc.excluded[:0]
	for i := range sc.picks {
		sc.picks[i] = nil
	}
	sc.picks = sc.picks[:0]
	sc.wo.Writer = nil
	if sc.wire != nil {
		if sc.wire.inFlight {
			sc.wire = nil
		} else {
			sc.wire.scrub()
		}
	}
}

// excludedHas reports whether addr failed earlier in this request. The
// set is bounded by the retry budget (single digits), so a linear scan
// beats the per-request map the exclusion set used to allocate.
func excludedHas(excluded []string, addr string) bool {
	for _, a := range excluded {
		if a == addr {
			return true
		}
	}
	return false
}
