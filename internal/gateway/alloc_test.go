package gateway

import (
	"io"
	"net/http"
	"net/url"
	"testing"

	"revelio/attestation"
	"revelio/internal/race"
)

// replayBody is a rewindable in-memory response body: the stub
// transport rewinds it per request instead of allocating a reader, so
// the allocation guard below measures the gateway's own path.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *replayBody) Close() error { return nil }

// stubTransport answers every RoundTrip with one reused canned response
// — zero allocations of its own — standing in for g.transport behind
// the Gateway.rt seam. Only valid for the sequential use the guard and
// benchmark make of it.
type stubTransport struct {
	resp http.Response
	body replayBody
}

func newStubTransport(payload string) *stubTransport {
	st := &stubTransport{body: replayBody{data: []byte(payload)}}
	st.resp = http.Response{
		Status:        "200 OK",
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        make(http.Header),
		Body:          &st.body,
		ContentLength: int64(len(payload)),
	}
	return st
}

func (st *stubTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Body != nil {
		_ = r.Body.Close()
	}
	st.body.off = 0
	return &st.resp, nil
}

// nullRW is a ResponseWriter that discards everything, reusing one
// header map across requests.
type nullRW struct{ h http.Header }

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullRW) WriteHeader(int)             {}

// newAllocGateway builds an unstarted gateway over a one-node view with
// the round-tripper seam replaced by a canned-response stub.
func newAllocGateway(tb testing.TB, payload string) *Gateway {
	tb.Helper()
	g, err := New(Config{
		Source:   NewView(testDomain, serving("127.0.0.1:4433")),
		Verifier: attestation.NewMux(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(g.Close)
	g.rt = newStubTransport(payload)
	return g
}

// allocRequest builds a reusable inbound request; ServeHTTP must not
// mutate it, so one shell serves every iteration.
func allocRequest() *http.Request {
	return &http.Request{
		Method:     http.MethodGet,
		URL:        &url.URL{Scheme: "http", Host: "client.example", Path: "/hot"},
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"Accept": {"*/*"}, "User-Agent": {"alloc-guard"}},
		Host:       "client.example",
		RemoteAddr: "192.0.2.10:4242",
	}
}

// TestGatewayProxyAllocs is the allocs/op guard for the proxied-request
// hot path: with the pooled scratch, the steady-state budget is the
// per-attempt context machinery (cancelCtx, cancel func, try timer) and
// the outbound request's WithContext shallow copy — well under 8.
// Mirrors the dmcrypt/dmverity guards, including the -race skip.
func TestGatewayProxyAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops entries at random under -race")
	}
	g := newAllocGateway(t, "hello from the fleet")
	req := allocRequest()
	w := &nullRW{h: make(http.Header)}
	// Warm the pools and grow the pooled maps/slices to steady state.
	for i := 0; i < 64; i++ {
		g.ServeHTTP(w, req)
	}
	allocs := testing.AllocsPerRun(200, func() {
		g.ServeHTTP(w, req)
	})
	if allocs > 8 {
		t.Errorf("steady-state proxied request: %.1f allocs/op, want <= 8", allocs)
	}
}

// BenchmarkGatewayProxy reports ns/op and allocs/op for the gateway's
// own proxy path over the stubbed transport (run with -benchmem). The
// whole-path number including net/http lives in Table 6's
// high-concurrency cell.
func BenchmarkGatewayProxy(b *testing.B) {
	g := newAllocGateway(b, "hello from the fleet")
	req := allocRequest()
	w := &nullRW{h: make(http.Header)}
	for i := 0; i < 64; i++ {
		g.ServeHTTP(w, req)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ServeHTTP(w, req)
	}
}
