package gateway

import (
	"context"
	"crypto/tls"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"revelio/attestation"
	"revelio/internal/ratls"
)

// TestGatewayBreakerLatencyOnSeamClock is the regression test for the
// clock-seam bug the timeseam analyzer flushed out: forward() measured
// per-attempt latency with the naked wall clock while the breaker's
// slow-threshold and dwell accounting ran on the injected
// Resilience.Now. Under any injected clock the measured latency stayed
// at real-time values (~0 for a local upstream), so the gray-failure
// detector never tripped — chaos replays and tests could not exercise
// slowness at all. With latency measured on the seam, a clock that
// advances on every read makes a fast-in-real-time upstream register
// as slow, and the breaker must open.
func TestGatewayBreakerLatencyOnSeamClock(t *testing.T) {
	provider, _, _ := softProvider(t, "seamclock")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	cert, err := ratls.CreateProviderCertificate(context.Background(), provider, testDomain)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: idHandler("fast"), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}})) }()
	t.Cleanup(func() { _ = srv.Close() })

	// Every read of the injected clock advances it by more than the slow
	// threshold, so each attempt's start→end delta counts as slow no
	// matter how fast the upstream answers in real time.
	var ticks atomic.Int64
	base := time.Now()
	fakeNow := func() time.Time {
		return base.Add(time.Duration(ticks.Add(1)) * 60 * time.Millisecond)
	}

	gwCert := selfSigned(t)
	g, err := New(Config{
		Source:         NewView(testDomain, serving(ln.Addr().String())),
		Verifier:       mux,
		GetCertificate: func() (*tls.Certificate, error) { return &gwCert, nil },
		Resilience: Resilience{
			BreakerSlow:     50 * time.Millisecond,
			BreakerFailures: 2,
			// Keep the probe loop and re-admission out of the picture:
			// the assertion is about tripping, not recovery.
			BreakerOpenFor: time.Hour,
			ProbeInterval:  time.Hour,
			Now:            fakeNow,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	client := &http.Client{
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{InsecureSkipVerify: true}, //nolint:gosec // test client
		},
		Timeout: 10 * time.Second,
	}
	t.Cleanup(client.CloseIdleConnections)

	// Two successful-but-slow-on-the-seam responses must trip the
	// breaker; a couple more requests gives retries room without making
	// the assertion timing-sensitive.
	for i := 0; i < 4; i++ {
		resp, err := client.Get("https://" + g.Addr() + "/")
		if err != nil {
			continue // post-trip requests may 502; the counter is the assertion
		}
		_ = resp.Body.Close()
	}
	if opens := g.Stats().BreakerOpens; opens < 1 {
		t.Fatalf("BreakerOpens = %d after slow-on-the-seam successes, want >= 1 "+
			"(breaker latency not measured on the injected clock)", opens)
	}
}
