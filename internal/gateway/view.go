package gateway

import (
	"sync"

	"revelio/internal/fleet"
	"revelio/internal/measure"
)

// View is a standalone publishable serving view: a Source for
// membership owners other than the fleet engine (the Service facade,
// static test topologies). Set replaces the view under the write half
// of the admission lock, so — exactly as in the fleet engine — a
// membership change drains every admitted request before it lands, and
// the zero-failed-request property holds through a gateway running over
// a View.
type View struct {
	mu   sync.RWMutex
	snap fleet.Snapshot
	subs fleet.Subscribers
	// release is the precomputed Acquire release func: the method value
	// v.mu.RUnlock, bound once here instead of allocated per request.
	release func()
}

var _ Source = (*View)(nil)

// NewView creates a view with the given endpoints (version 1).
func NewView(domain string, eps ...fleet.Endpoint) *View {
	v := &View{
		snap: fleet.Snapshot{Version: 1, Domain: domain, Endpoints: eps},
	}
	v.release = v.mu.RUnlock
	return v
}

// Set replaces the view's endpoints and notifies subscribers. It
// returns only after every request admitted against the previous view
// has released — the drain a caller relies on before closing a
// departed endpoint's servers.
func (v *View) Set(eps ...fleet.Endpoint) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.snap.Version++
	v.snap.Endpoints = eps
	v.subs.Publish(v.snap)
}

// SetRollout publishes rollout context alongside the endpoints: golden
// is the measurement new launches target (the canary image while a
// rollout is staged), and prior — non-nil exactly while a rollout is in
// progress — the pre-rollout golden. The fleet engine publishes the
// same context from StageFirmware/CommitRollOut/AbortRollOut; View
// owners stage and clear it explicitly.
func (v *View) SetRollout(golden measure.Measurement, prior *measure.Measurement) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.snap.Version++
	v.snap.Golden = golden
	if prior != nil {
		p := *prior
		v.snap.PriorGolden = &p
	} else {
		v.snap.PriorGolden = nil
	}
	v.subs.Publish(v.snap)
}

// Acquire implements Source.
func (v *View) Acquire() (fleet.Snapshot, func()) {
	v.mu.RLock()
	if v.release != nil {
		return v.snap, v.release
	}
	// Zero-value View (no NewView): fall back to the per-call method
	// value rather than racing to cache one under the read lock.
	return v.snap, v.mu.RUnlock
}

// Subscribe implements Source.
func (v *View) Subscribe() (<-chan fleet.Snapshot, func()) {
	v.mu.Lock()
	ch, id := v.subs.Add(v.snap)
	v.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			v.mu.Lock()
			v.subs.Remove(id)
			v.mu.Unlock()
		})
	}
}
