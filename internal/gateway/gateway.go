// Package gateway is Revelio's attested data plane: a TLS-terminating
// reverse proxy that turns N attested nodes into one scalable service.
//
// Downstream, the gateway serves the fleet's shared CA-issued
// certificate (resolved per handshake, so rotations propagate), which
// keeps the end-to-end client story intact: a browser running the
// Revelio extension still pins the attested TLS key and still gets its
// attestation bundle — proxied from a real node — bound to that same
// key.
//
// Upstream, every connection is RA-TLS: the transport dials the nodes'
// upstream listeners and verifies, per handshake, the attestation
// evidence embedded in their certificates through an attestation
// verifier — usually an attestation.Mux, so a mixed-provider fleet
// proxies through one gateway. Verification is fail-closed: a node
// whose evidence stops verifying (revoked measurement, expired
// evidence, unknown provider) is ejected from rotation, and a bump of
// any provider's policy revision flushes the connection pools so
// already-established upstreams re-prove themselves.
//
// Routing is context-aware and runs in four tiers per attempt: the
// policy filter (Config.Routing — hard rule constraints over the
// snapshot's TCB, provider and locality context, plus canary routing
// during a staged rollout), then attestation ejection, then the circuit
// breaker, then least-pending-requests with round-robin tie-breaking
// over the survivors. The serving view is published by a Source (the
// fleet engine, or any snapshot publisher). Each proxied request holds
// the source's admission (Source.Acquire) for its lifetime, which is
// the same mechanism behind the fleet's zero-failed-request drain: a
// lifecycle operation waits for admitted requests before closing a
// node, so churn never surfaces as a failed request through the proxy.
//
// Degradation is governed by the resilience layer (see Resilience):
// each upstream carries a circuit breaker fed by passive
// failure/latency observation and re-closed only by an active RA-TLS
// health probe, so transport-failed and gray-failed (slow-but-alive)
// nodes leave rotation globally — distinct from, and composing with,
// the fail-closed attestation ejection. Retries are paced by
// exponential backoff with jitter under a fixed attempt budget, every
// attempt gets its own response-header deadline carved from the request
// deadline, and bounded in-flight admission sheds overload with 503 +
// Retry-After instead of queueing behind the serving-view lock.
package gateway

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"revelio/attestation"
	"revelio/internal/fleet"
	"revelio/internal/ratls"
	"revelio/internal/resilience"
)

var (
	// ErrNoUpstreams reports a request that found no healthy serving
	// endpoint to route to.
	ErrNoUpstreams = errors.New("gateway: no healthy upstream endpoints")
	// ErrClosed reports use of a closed gateway.
	ErrClosed = errors.New("gateway: closed")
)

// DeadlineHeader carries a request's remaining deadline budget in
// integer milliseconds. Inbound, a client (or an upstream gateway) sets
// it to bound the whole proxied request; outbound, the gateway rewrites
// it per attempt to that attempt's carved budget, so nodes — and nested
// gateways — can shed work the caller has already given up on.
const DeadlineHeader = "Revelio-Deadline-Ms"

// Source publishes the serving view the gateway routes over. The fleet
// engine implements it; View adapts any other membership owner.
type Source interface {
	// Acquire admits one request: it returns the current snapshot and a
	// release func the caller invokes when the request completes.
	// Membership mutations must wait for admitted requests (the drain).
	Acquire() (fleet.Snapshot, func())
	// Subscribe returns a channel of view changes (latest-wins
	// coalescing) and a cancel func.
	Subscribe() (<-chan fleet.Snapshot, func())
}

// Resilience configures the gateway's graceful-degradation layer. The
// zero value means "all defaults"; every knob has one.
type Resilience struct {
	// RetryBudget caps upstream attempts per request, first attempt
	// included (default 3). This — not the fleet size — bounds the
	// worst-case attempt amplification of one client request.
	RetryBudget int
	// PerTryTimeout bounds one attempt's dial + request + response
	// headers (default 2s). It is also installed as the transport's
	// ResponseHeaderTimeout, so a node that accepts the connection and
	// never answers fails the attempt instead of stalling the client.
	PerTryTimeout time.Duration
	// RequestTimeout bounds a whole proxied request when the client sent
	// no DeadlineHeader (default 15s).
	RequestTimeout time.Duration
	// BackoffBase and BackoffMax shape the exponential equal-jitter
	// backoff between attempts (defaults 5ms and 100ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerFailures is how many consecutive failed (or slow) attempts
	// open an upstream's circuit breaker (default 3).
	BreakerFailures int
	// BreakerSlow, when positive, additionally counts successful
	// attempts slower than this toward the trip — the gray-failure
	// detector. Zero (the default) disables latency tripping.
	BreakerSlow time.Duration
	// BreakerOpenFor is the open-state dwell before an active health
	// probe may run (default 500ms).
	BreakerOpenFor time.Duration
	// ProbeInterval paces the background probe loop that re-admits
	// breaker-open upstreams (default 250ms).
	ProbeInterval time.Duration
	// ProbePath is the upstream health endpoint probed over RA-TLS
	// (default fleet.HealthPath). Probes ride the same attested
	// transport as traffic, so a node whose evidence stopped verifying
	// cannot probe its way back into rotation.
	ProbePath string
	// MaxInFlight bounds concurrently admitted requests per gateway
	// (default 1024); beyond it requests shed with 503 + Retry-After.
	MaxInFlight int
	// MaxPerUpstream bounds in-flight attempts per upstream (default
	// 256); a node at its bound is skipped like an unhealthy one.
	MaxPerUpstream int
	// MinDeadline is the smallest remaining deadline worth an upstream
	// attempt (default 5ms); below it the request sheds instead.
	MinDeadline time.Duration
	// Rand is the backoff jitter source returning values in [0, 1), and
	// Now the breaker dwell clock — both injectable so chaos schedules
	// and tests replay deterministically (defaults math/rand.Float64 and
	// time.Now).
	Rand func() float64
	Now  func() time.Time
}

func (r Resilience) withDefaults() Resilience {
	if r.RetryBudget <= 0 {
		r.RetryBudget = 3
	}
	if r.PerTryTimeout <= 0 {
		r.PerTryTimeout = 2 * time.Second
	}
	if r.RequestTimeout <= 0 {
		r.RequestTimeout = 15 * time.Second
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = 5 * time.Millisecond
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = 100 * time.Millisecond
	}
	if r.BreakerFailures <= 0 {
		r.BreakerFailures = 3
	}
	if r.BreakerOpenFor <= 0 {
		r.BreakerOpenFor = 500 * time.Millisecond
	}
	if r.ProbeInterval <= 0 {
		r.ProbeInterval = 250 * time.Millisecond
	}
	if r.ProbePath == "" {
		r.ProbePath = fleet.HealthPath
	}
	if r.MaxInFlight <= 0 {
		r.MaxInFlight = 1024
	}
	if r.MaxPerUpstream <= 0 {
		r.MaxPerUpstream = 256
	}
	if r.MinDeadline <= 0 {
		r.MinDeadline = 5 * time.Millisecond
	}
	if r.Now == nil {
		r.Now = time.Now //revelio:allow timeseam the gateway clock seam's single real-time default
	}
	return r
}

// Config describes a gateway.
type Config struct {
	// Source publishes the serving view (required).
	Source Source
	// Verifier judges upstream RA-TLS evidence — typically the fleet's
	// attestation.Mux, so every registered provider's nodes are
	// dialable (required).
	Verifier attestation.Verifier
	// GetCertificate resolves the downstream serving certificate per
	// handshake (required for Start; ServeHTTP alone works without).
	// Fleet.ServingCertificate is the usual implementation.
	GetCertificate func() (*tls.Certificate, error)
	// MaxIdleConnsPerHost bounds the warm connection pool per node
	// (default 64).
	MaxIdleConnsPerHost int
	// DialTimeout bounds one upstream dial+handshake (default 10s).
	DialTimeout time.Duration
	// WriteTimeout bounds writing one response to a downstream client
	// (default 30s). A proxied request holds the serving-view admission
	// for its lifetime — that is the zero-failed-request drain — so
	// this timeout is also the longest a stalled client can delay a
	// fleet lifecycle operation.
	WriteTimeout time.Duration
	// Resilience tunes circuit breaking, retry budgets, deadlines, and
	// load shedding; the zero value takes every default.
	Resilience Resilience
	// Routing configures the context-aware policy layer: hard rules
	// (TCB floors, provider and locality constraints by path class),
	// per-provider traffic splits, and measurement-based canary routing
	// with auto-rollback. The zero value disables the layer.
	Routing Routing
}

// upstream is the gateway's routing state for one endpoint.
type upstream struct {
	ep      fleet.Endpoint
	pending atomic.Int64
	ejected atomic.Bool
	breaker *resilience.Breaker
}

// Stats is a point-in-time picture of the data plane.
type Stats struct {
	// Requests counts proxied requests admitted so far (shed requests
	// are refused before admission and do not count here).
	Requests int64
	// Retries counts upstream attempts beyond each request's first.
	Retries int64
	// SheddedRequests counts requests refused with 503 + Retry-After by
	// admission control or deadline-aware shedding.
	SheddedRequests int64
	// BreakerOpens counts closed→open circuit-breaker trips.
	BreakerOpens int64
	// ProbeSuccesses and ProbeFailures count active health probes sent
	// to breaker-open upstreams and their outcomes.
	ProbeSuccesses int64
	ProbeFailures  int64
	// Ejected lists upstream addresses currently out of rotation
	// because their attestation stopped verifying, sorted.
	Ejected []string
	// BreakerOpen lists upstream addresses whose circuit breaker is not
	// closed (open or half-open), sorted. These receive probes only.
	BreakerOpen []string
	// PolicyFlushes counts connection-pool flushes triggered by policy
	// revision changes.
	PolicyFlushes int64
	// TruncatedResponses counts proxied responses aborted mid-body
	// because the upstream copy failed after headers were sent.
	TruncatedResponses int64
	// PolicyEpoch is the gateway's monotone policy epoch: the sum of
	// every per-source policy-revision increment observed so far.
	PolicyEpoch uint64
	// ViewVersion is the serving-view version the routing table last
	// reconciled against.
	ViewVersion uint64
	// PolicyRejected counts requests refused with 503 because the
	// routing policy excluded every serving endpoint (no Retry-After:
	// unlike a shed, backing off does not help until the policy or the
	// fleet changes).
	PolicyRejected int64
	// CanaryRequests and CanaryFailures count upstream attempts that
	// landed on the staged canary measurement during the current (or
	// just-ended) rollout, and how many of them failed (transport error
	// or 5xx).
	CanaryRequests int64
	CanaryFailures int64
	// CanaryRollbacks counts canary auto-rollbacks fired over the
	// gateway's lifetime.
	CanaryRollbacks int64
	// CanaryRolledBack reports that the currently staged rollout's
	// canary measurement has been rolled back: the gateway routes no
	// traffic to it until the rollout is committed or aborted.
	CanaryRolledBack bool
	// CanaryMeasurement is the hex launch measurement of the current
	// (or last rolled-back) canary group, "" before any rollout.
	CanaryMeasurement string
}

// Gateway is the attested reverse proxy.
type Gateway struct {
	cfg       Config
	res       Resilience
	retry     resilience.RetryPolicy
	admission *resilience.Admission
	transport *http.Transport
	// rt is the round-tripper the data plane calls — g.transport in
	// production, a stub in the allocation-guard tests, so the guard
	// measures the gateway's own path rather than net/http internals.
	rt http.RoundTripper
	// sessions caches upstream TLS sessions, fenced by the policy epoch:
	// a resumed session must not outlive the policy it was verified
	// under (see session.go).
	sessions *epochSessionCache
	router   *router

	mu      sync.Mutex
	ups     map[string]*upstream // by UpstreamAddr
	version uint64
	domain  string
	closed  bool
	// revs caches the policy-revision sources reachable through the
	// verifier; rebuilt on every view change (sync) rather than walked
	// through the mux per request.
	revs []attestation.Revisioned
	// epoch accumulates per-source policy-revision *increments* into one
	// monotone number (guarded by mu, with lastRevs tracking each
	// source's high-water revision). Summing raw revisions is not enough:
	// when a source deregisters the sum shrinks, and a later bump can
	// land the sum back on its old value — silently skipping the
	// fail-closed pool flush that bump demands.
	epoch    uint64
	lastRevs map[attestation.Revisioned]uint64

	rr           atomic.Uint64
	requests     atomic.Int64
	retries      atomic.Int64
	shed         atomic.Int64
	breakerOpens atomic.Int64
	probeOK      atomic.Int64
	probeFail    atomic.Int64
	flushes      atomic.Int64
	truncated    atomic.Int64

	// flushedEpoch is the policy epoch the pools were last flushed at.
	flushedEpoch atomic.Uint64

	server *http.Server
	// serverTLS is the downstream listener's TLS config (nil before
	// Start); its session-ticket key rotates on every policy-epoch bump
	// so outstanding tickets stop resuming (guarded by mu).
	serverTLS *tls.Config
	listener  net.Listener
	unsub     func()
	probeStop chan struct{}
	watchWG   sync.WaitGroup
}

// New builds a gateway over cfg. Call Start to open the listener, or
// use the Gateway directly as an http.Handler behind your own server.
func New(cfg Config) (*Gateway, error) {
	if cfg.Source == nil {
		return nil, errors.New("gateway: nil source")
	}
	if cfg.Verifier == nil {
		return nil, errors.New("gateway: nil verifier")
	}
	if cfg.MaxIdleConnsPerHost <= 0 {
		cfg.MaxIdleConnsPerHost = 64
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	res := cfg.Resilience.withDefaults()
	tlsCfg := ratls.ProviderClientConfig(cfg.Verifier)
	g := &Gateway{
		cfg: cfg,
		res: res,
		retry: resilience.RetryPolicy{
			Budget:      res.RetryBudget,
			BackoffBase: res.BackoffBase,
			BackoffMax:  res.BackoffMax,
			Rand:        res.Rand,
		}.WithDefaults(),
		admission: resilience.NewAdmission(res.MaxInFlight),
		router:    newRouter(cfg.Routing),
		ups:       make(map[string]*upstream),
		lastRevs:  make(map[attestation.Revisioned]uint64),
		probeStop: make(chan struct{}),
		transport: &http.Transport{
			TLSClientConfig:     tlsCfg,
			TLSHandshakeTimeout: cfg.DialTimeout,
			DialContext: (&net.Dialer{
				Timeout: cfg.DialTimeout,
			}).DialContext,
			MaxIdleConnsPerHost: cfg.MaxIdleConnsPerHost,
			// The per-attempt header deadline: a node that accepts the
			// connection but never sends headers fails this attempt
			// instead of pinning the client until WriteTimeout.
			ResponseHeaderTimeout: res.PerTryTimeout,
		},
	}
	g.rt = g.transport
	// Upstream session resumption, fenced by the policy epoch: a cached
	// session never resumes across an epoch bump (so a revocation bites
	// through resumed sessions), and the resumptions that are allowed
	// still re-judge the peer's saved evidence against current policy via
	// VerifyConnection — resumed handshakes skip VerifyPeerCertificate.
	g.sessions = newEpochSessionCache(g.flushedEpoch.Load, defaultSessionCacheSize)
	tlsCfg.ClientSessionCache = g.sessions
	verifyPeer := tlsCfg.VerifyPeerCertificate
	tlsCfg.VerifyConnection = func(cs tls.ConnectionState) error {
		if !cs.DidResume {
			return nil // full handshake: VerifyPeerCertificate already ran
		}
		if len(cs.PeerCertificates) == 0 {
			return ratls.ErrNoPeerCertificate
		}
		return verifyPeer([][]byte{cs.PeerCertificates[0].Raw}, nil)
	}
	g.revs = revisionSources(cfg.Verifier)
	g.mu.Lock()
	g.flushedEpoch.Store(g.advanceEpochLocked())
	g.mu.Unlock()
	snap, release := cfg.Source.Acquire()
	g.sync(snap)
	release()

	// Watch the view: on churn, retire departed endpoints promptly and
	// drop their warm connections instead of waiting for the next
	// request to notice.
	ch, unsub := cfg.Source.Subscribe()
	g.unsub = unsub
	g.watchWG.Add(1)
	go func() {
		defer g.watchWG.Done()
		for snap := range ch {
			if g.sync(snap) {
				g.transport.CloseIdleConnections()
			}
		}
	}()
	// Probe loop: breaker-open upstreams re-enter rotation only through
	// a successful attested health probe.
	g.watchWG.Add(1)
	go g.probeLoop()
	return g, nil
}

// breakerConfig derives each upstream's breaker parameters from the
// gateway's resilience knobs.
func (g *Gateway) breakerConfig() resilience.BreakerConfig {
	return resilience.BreakerConfig{
		FailureThreshold: g.res.BreakerFailures,
		SlowThreshold:    g.res.BreakerSlow,
		OpenFor:          g.res.BreakerOpenFor,
		Now:              g.res.Now,
	}
}

// revisionSources collects every policy-revision source reachable
// through v: v itself, and — when v is a Mux — each registered
// provider. The result is cached on the gateway and refreshed per view
// change, so the per-request epoch check is a handful of atomic loads
// instead of a mux walk.
func revisionSources(v attestation.Verifier) []attestation.Revisioned {
	var revs []attestation.Revisioned
	if rev, ok := v.(attestation.Revisioned); ok {
		revs = append(revs, rev)
	}
	if mux, ok := v.(*attestation.Mux); ok {
		for _, name := range mux.Providers() {
			if pv, ok := mux.Verifier(name); ok {
				if rev, ok := pv.(attestation.Revisioned); ok {
					revs = append(revs, rev)
				}
			}
		}
	}
	return revs
}

// advanceEpochLocked folds each source's current policy revision into
// the monotone epoch: only per-source increases count, so the epoch
// never goes backwards even as sources register and deregister. A
// source seen for the first time contributes its full revision — a
// spurious flush on discovery is harmless; a missed one is not.
// Callers hold g.mu.
func (g *Gateway) advanceEpochLocked() uint64 {
	for _, rev := range g.revs {
		cur := rev.PolicyRevision()
		last, seen := g.lastRevs[rev]
		switch {
		case !seen:
			g.epoch += cur
			g.lastRevs[rev] = cur
		case cur > last:
			g.epoch += cur - last
			g.lastRevs[rev] = cur
		}
	}
	return g.epoch
}

// checkPolicyEpoch flushes the upstream pools when any provider's
// policy revision moved since the last request: pooled connections were
// verified under the old policy, and fail-closed means they must
// re-prove themselves under the new one. Ejections are cleared too —
// the policy change may equally have reinstated a provider. Circuit
// breakers are left alone: they track transport health, not policy, and
// re-close only through a successful probe.
func (g *Gateway) checkPolicyEpoch() {
	g.mu.Lock()
	epoch := g.advanceEpochLocked()
	g.mu.Unlock()
	old := g.flushedEpoch.Load()
	if epoch == old || !g.flushedEpoch.CompareAndSwap(old, epoch) {
		return
	}
	g.flushes.Add(1)
	g.transport.CloseIdleConnections()
	// Resumption state is policy state on both planes: drop the cached
	// upstream sessions (the epoch fence already refuses them; flushing
	// frees them promptly) and rotate the downstream ticket key so
	// outstanding client tickets stop resuming past the old policy.
	g.sessions.flush()
	g.mu.Lock()
	for _, up := range g.ups {
		up.ejected.Store(false)
	}
	serverTLS := g.serverTLS
	g.mu.Unlock()
	if serverTLS != nil {
		rotateTicketKey(serverTLS)
	}
}

// sync reconciles the routing table with a snapshot, preserving pending
// counts, ejection state, and breaker state for surviving endpoints. It
// reports whether any endpoint departed (so callers must drop its
// pooled connections); whichever path observes a version first — the
// per-request fast path or the subscription watcher — consumes it, so
// both act on the result.
func (g *Gateway) sync(snap fleet.Snapshot) (removed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if snap.Version <= g.version && g.version != 0 {
		return false
	}
	g.version = snap.Version
	g.domain = snap.Domain
	// Track the rollout context for canary routing: a newly staged
	// rollout resets the canary accounting, the rollout ending clears it.
	g.router.observe(snap)
	// Refresh the revision sources alongside the view: providers are
	// attached before their nodes join, so a membership change is the
	// natural moment to notice them. Prune the high-water map to the
	// live sources; the epoch itself keeps whatever they contributed.
	g.revs = revisionSources(g.cfg.Verifier)
	live := make(map[attestation.Revisioned]bool, len(g.revs))
	for _, rev := range g.revs {
		live[rev] = true
	}
	for rev := range g.lastRevs {
		if !live[rev] {
			delete(g.lastRevs, rev)
		}
	}
	keep := make(map[string]*upstream, len(snap.Endpoints))
	for _, ep := range snap.Endpoints {
		if ep.UpstreamAddr == "" {
			continue
		}
		if up, ok := g.ups[ep.UpstreamAddr]; ok {
			up.ep = ep
			keep[ep.UpstreamAddr] = up
			continue
		}
		keep[ep.UpstreamAddr] = &upstream{
			ep:      ep,
			breaker: resilience.NewBreaker(g.breakerConfig()),
		}
	}
	for addr := range g.ups {
		if _, ok := keep[addr]; !ok {
			// Departure by address, not by count: a same-size swap
			// (replace) retires an endpoint too.
			removed = true
			break
		}
	}
	g.ups = keep
	return removed
}

// pick selects the upstream for one attempt through the four routing
// tiers, in documented precedence order:
//
//	tier 1 — policy filter   (hard: rule constraints, rolled-back canary)
//	tier 2 — attestation ejection (fail-closed, + per-request exclusion)
//	tier 3 — circuit breaker (transport health)
//	tier 4 — least-pending balancing under the per-upstream bound
//
// Soft preferences (canary fraction, provider splits) narrow the
// surviving candidate set between tiers 3 and 4 but fall back to the
// full in-policy set when no preferred node is healthy — a preference
// never fails a servable request. saturated reports that healthy
// in-policy candidates existed but every one was at its in-flight bound
// — worth a paced re-pick, unlike a genuinely empty rotation. denied
// reports that serving endpoints existed but tier 1 excluded all of
// them: the request must be refused as out of policy, not retried.
func (g *Gateway) pick(d decision, sc *proxyScratch) (up *upstream, saturated, denied bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	candidates := sc.picks[:0]
	serving, inPolicy := 0, 0
	for _, u := range g.ups {
		if u.ep.State != fleet.StateServing {
			continue
		}
		serving++
		if d.rule != nil && !d.rule.allows(u.ep) {
			continue
		}
		if d.avoid != nil && u.ep.Measurement == *d.avoid {
			continue
		}
		inPolicy++
		if u.ejected.Load() || excludedHas(sc.excluded, u.ep.UpstreamAddr) {
			continue
		}
		if !u.breaker.Allow() {
			continue
		}
		if u.pending.Load() >= int64(g.res.MaxPerUpstream) {
			saturated = true
			continue
		}
		candidates = append(candidates, u)
	}
	// Park the grown workspace before preferCandidates narrows the view:
	// the pooled slice must keep its full capacity for the next request.
	sc.picks = candidates
	if len(candidates) == 0 {
		return nil, saturated, serving > 0 && inPolicy == 0
	}
	candidates = preferCandidates(candidates, d)
	start := int(g.rr.Add(1) % uint64(len(candidates)))
	best := candidates[start]
	bestPending := best.pending.Load()
	for i := 1; i < len(candidates); i++ {
		u := candidates[(start+i)%len(candidates)]
		if p := u.pending.Load(); p < bestPending {
			best, bestPending = u, p
		}
	}
	return best, false, false
}

// preferCandidates applies the decision's soft preferences — the canary
// fraction first, then the provider split within the surviving set.
// Each narrows only when a preferred candidate exists; otherwise the
// set passes through unchanged.
func preferCandidates(candidates []*upstream, d decision) []*upstream {
	if d.canaryMeas != nil {
		sub := make([]*upstream, 0, len(candidates))
		for _, u := range candidates {
			if (u.ep.Measurement == *d.canaryMeas) == d.preferCanary {
				sub = append(sub, u)
			}
		}
		if len(sub) > 0 {
			candidates = sub
		}
	}
	if d.provider != "" {
		sub := make([]*upstream, 0, len(candidates))
		for _, u := range candidates {
			if u.ep.Provider == d.provider {
				sub = append(sub, u)
			}
		}
		if len(sub) > 0 {
			candidates = sub
		}
	}
	return candidates
}

// isAttestationReject reports an upstream failure that means the node's
// attestation no longer verifies — the fail-closed ejection triggers —
// as against a transient transport error worth retrying elsewhere
// without ejecting.
func isAttestationReject(err error) bool {
	return errors.Is(err, attestation.ErrPolicyRejected) ||
		errors.Is(err, attestation.ErrEvidenceInvalid) ||
		errors.Is(err, attestation.ErrEvidenceExpired) ||
		errors.Is(err, attestation.ErrUnknownProvider) ||
		errors.Is(err, ratls.ErrNoEvidence) ||
		errors.Is(err, ratls.ErrKeyMismatch) ||
		errors.Is(err, ratls.ErrNoPeerCertificate)
}

// isHopByHop reports the connection-scoped headers a proxy must not
// forward, by canonical name. A switch on the canonical key replaces
// the old slice walk of Del calls, so the hot path neither re-canonicalizes
// nor allocates.
func isHopByHop(k string) bool {
	switch k {
	case "Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
		"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

// connectionNames calls fn for each header name listed in h's Connection
// header (already canonicalized), walking the comma-separated list
// without strings.Split's slice allocation. Connection-named headers are
// rare, so the canonicalization inside stays off the common path.
func connectionNames(h http.Header, fn func(name string)) {
	for _, v := range h["Connection"] {
		for v != "" {
			f := v
			if i := strings.IndexByte(v, ','); i >= 0 {
				f, v = v[:i], v[i+1:]
			} else {
				v = ""
			}
			if f = strings.TrimSpace(f); f != "" {
				fn(http.CanonicalHeaderKey(f))
			}
		}
	}
}

// stripHopByHop removes the hop-by-hop headers from h in place — used on
// response headers, which the gateway mutates before copying out.
func stripHopByHop(h http.Header) {
	connectionNames(h, func(name string) { delete(h, name) })
	for k := range h {
		if isHopByHop(k) {
			delete(h, k)
		}
	}
}

// copyOutboundHeaders fills dst (a pooled, cleared workspace) with the
// forwardable subset of the inbound headers. Value slices are shared,
// not copied — the transport only reads them — so the copy allocates
// nothing beyond first-use map growth, which the pool amortizes. The
// gateway-owned headers (DeadlineHeader, X-Forwarded-For) are skipped
// here and written by forward from pooled scratch.
func copyOutboundHeaders(dst, src http.Header) {
	for k, vv := range src {
		if isHopByHop(k) || k == DeadlineHeader || k == "X-Forwarded-For" {
			continue
		}
		dst[k] = vv
	}
	// Headers named by Connection are hop-by-hop too; drop any that the
	// static set above let through.
	connectionNames(src, func(name string) { delete(dst, name) })
}

// retryable reports whether a request can be re-sent to another node
// after a failed attempt: its body must be absent or replayable.
func retryable(r *http.Request) bool {
	return r.Body == nil || r.Body == http.NoBody || r.GetBody != nil
}

// shedResponse refuses one request with 503 + Retry-After: the
// machine-readable "back off briefly" that distinguishes deliberate
// load shedding from upstream failure (502).
func shedResponse(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "gateway: overloaded, retry later", http.StatusServiceUnavailable)
}

// sleepCtx pauses for d, reporting false if ctx fires first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	//revelio:allow timeseam backoff must block in real time against a real ctx; an injected Now cannot fire a channel
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// ServeHTTP proxies one request to the healthiest attested node. The
// request holds the source admission for its lifetime, so fleet churn
// drains through the gateway exactly as it does for direct clients.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Admission runs before the serving view is touched: overload must
	// shed promptly, not queue behind the drain lock.
	if !g.admission.TryAcquire() {
		g.shed.Add(1)
		shedResponse(w)
		return
	}
	defer g.admission.Release()

	timeout := g.res.RequestTimeout
	if h := r.Header.Get(DeadlineHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			timeout = time.Duration(ms) * time.Millisecond
		}
	}
	if timeout < g.res.MinDeadline {
		// Deadline-aware shed: the caller's remaining budget cannot fit
		// even one attempt, so refuse cheaply rather than burn a node.
		g.shed.Add(1)
		shedResponse(w)
		return
	}
	// The request deadline is a time.Time compared against the resilience
	// clock, not a context.WithTimeout: the per-attempt context in forward
	// is the only context machinery on the path, which saves the
	// timerCtx/stop-closure/request-clone allocations on every request.
	// An inbound context deadline (from a fronting server or test) still
	// wins when it is sooner.
	ctx := r.Context()
	deadline := g.res.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}

	sc := scratchPool.Get().(*proxyScratch)
	defer scratchPool.Put(sc)
	// LIFO with the Put above: reset runs first, settling the in-flight
	// attempt (also on the ErrAbortHandler panic path) and abandoning a
	// tainted wire before the scratch re-enters the pool.
	defer sc.reset()

	snap, release := g.cfg.Source.Acquire()
	defer release()
	g.checkPolicyEpoch()
	if g.sync(snap) {
		// A node left the view since the last observed version: its
		// warm connections must not linger in the pool.
		g.transport.CloseIdleConnections()
	}
	g.requests.Add(1)

	// The routing decision is computed once per request and applied to
	// every attempt, so retries stay inside the same policy verdict
	// (rule, split side, canary side).
	var d decision
	if g.router.enabled() {
		d = g.router.decide(r.URL.Path)
	}

	var lastErr error
	forwards := 0
	sawSaturation := false
	policyDenied := false
	for attempt := 0; attempt < g.res.RetryBudget; attempt++ {
		if attempt > 0 {
			// Pace the retry, clamped to the remaining deadline; give up
			// if the client hangs up mid-backoff.
			pause := g.retry.Backoff(attempt)
			if rem := deadline.Sub(g.res.Now()); pause > rem {
				pause = rem
			}
			if pause <= 0 || !sleepCtx(ctx, pause) {
				break
			}
		}
		if deadline.Sub(g.res.Now()) < g.res.MinDeadline {
			break
		}
		up, saturated, denied := g.pick(d, sc)
		if up == nil {
			if denied {
				// Tier 1 excluded every serving endpoint: retrying
				// cannot help until the policy or the fleet changes.
				policyDenied = true
				break
			}
			if !saturated {
				break
			}
			// Every healthy node is at its in-flight bound; the next
			// backoff may free capacity.
			sawSaturation = true
			continue
		}
		if forwards > 0 {
			// Retries counts real extra upstream attempts, so
			// Retries <= Requests*(RetryBudget-1) is the amplification
			// invariant the chaos harness asserts.
			g.retries.Add(1)
		}
		forwards++
		resp, err := g.forward(ctx, sc, up, snap.Domain, r, deadline, g.res.RetryBudget-attempt)
		if err != nil {
			lastErr = err
			expired := ctx.Err() != nil || !g.res.Now().Before(deadline)
			if !expired {
				// Canary accounting mirrors the breaker's rule: outcomes
				// the client's own deadline caused are nobody's failure.
				g.router.recordCanary(up.ep.Measurement, true)
			}
			if isAttestationReject(err) {
				// Fail closed: the node no longer proves its measured
				// state; out of rotation until the policy moves again.
				up.ejected.Store(true)
			}
			sc.excluded = append(sc.excluded, up.ep.UpstreamAddr)
			if expired || !retryable(r) {
				break
			}
			continue
		}
		// A 5xx is returned to the client as-is (the gateway does not
		// retry served responses), but it counts against the canary:
		// a failing canary image typically fails with clean 500s.
		g.router.recordCanary(up.ep.Measurement, resp.StatusCode >= 500)
		g.writeResponse(w, sc, resp)
		return
	}
	switch {
	case lastErr != nil:
		http.Error(w, fmt.Sprintf("gateway: upstream failed: %v", lastErr), http.StatusBadGateway)
	case policyDenied:
		// Serving endpoints exist but the routing policy excludes all of
		// them. 503 without Retry-After: unlike a shed, backing off does
		// not help until the policy or the fleet changes.
		g.router.policyDeny.Add(1)
		http.Error(w, ErrNoPolicyUpstreams.Error(), http.StatusServiceUnavailable)
	case sawSaturation:
		// Healthy nodes existed but stayed at capacity through every
		// paced re-pick: that is overload, not failure.
		g.shed.Add(1)
		shedResponse(w)
	default:
		http.Error(w, ErrNoUpstreams.Error(), http.StatusBadGateway)
	}
}

// forward sends one attempt to a node over RA-TLS. attemptsLeft (this
// attempt included) shares the remaining request deadline between the
// attempts still in budget. The outbound request is assembled in sc's
// pooled wire scratch instead of r.Clone, and the per-attempt timer and
// cancel are parked in sc (settled by writeResponse on success or the
// caller's deferred reset otherwise) instead of returned as a closure.
func (g *Gateway) forward(parent context.Context, sc *proxyScratch, up *upstream, domain string, r *http.Request, deadline time.Time, attemptsLeft int) (*http.Response, error) {
	perTry := resilience.CarveTry(g.res.PerTryTimeout, deadline.Sub(g.res.Now()), attemptsLeft)
	// The per-try clock covers dial + request + response headers; once
	// headers arrive the attempt has succeeded and the same timer is
	// re-armed to the request deadline, so a slow client draining a long
	// body is bounded by the deadline and WriteTimeout, not mistaken for
	// a stalled node.
	tryCtx, cancel := context.WithCancel(parent)
	//revelio:allow timeseam the per-try cancel must fire in real time to abort a real RoundTrip; the measured latency is on the seam
	timer := time.AfterFunc(perTry, cancel)
	sc.tryTimer, sc.tryCancel = timer, cancel

	wire := sc.wire
	if wire == nil {
		wire = &wireScratch{hdr: make(http.Header, 16)}
		sc.wire = wire
	}
	copyOutboundHeaders(wire.hdr, r.Header)
	// Rewrite — never forward — the client's deadline header: the node
	// sees this attempt's carved budget, not whatever the client sent.
	wire.dlVal[0] = wire.msText(int64(perTry / time.Millisecond))
	wire.hdr[DeadlineHeader] = wire.dlVal[:1]
	// The gateway terminates TLS for outside clients, so it is the trust
	// boundary: any X-Forwarded-For the client sent is attacker-
	// controlled and must not reach the nodes, where it would read as an
	// upstream proxy's word on the client address. Replace, never append
	// (copyOutboundHeaders already dropped the inbound value).
	if clientIP, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		wire.xffVal[0] = clientIP
		wire.hdr["X-Forwarded-For"] = wire.xffVal[:1]
	}

	wire.url = url.URL{
		Scheme:     "https",
		Opaque:     r.URL.Opaque,
		User:       r.URL.User,
		Host:       up.ep.UpstreamAddr,
		Path:       r.URL.Path,
		RawPath:    r.URL.RawPath,
		ForceQuery: r.URL.ForceQuery,
		RawQuery:   r.URL.RawQuery,
	}
	body := r.Body
	if body == http.NoBody {
		body = nil
	}
	if r.GetBody != nil {
		b, err := r.GetBody()
		if err != nil {
			sc.finishAttempt()
			return nil, err
		}
		body = b
	}
	host := r.Host
	if domain != "" {
		host = domain
	}
	wire.req = http.Request{
		Method:           r.Method,
		URL:              &wire.url,
		Proto:            "HTTP/1.1",
		ProtoMajor:       1,
		ProtoMinor:       1,
		Header:           wire.hdr,
		Body:             body,
		GetBody:          r.GetBody,
		ContentLength:    r.ContentLength,
		TransferEncoding: r.TransferEncoding,
		Host:             host,
	}
	// WithContext's shallow copy is the one unavoidable allocation here:
	// the transport mutates and retains the *Request it is handed, so a
	// fresh shell per attempt it gets — but its URL, header map, and
	// header value slices all point into the pooled wire scratch, which
	// is why the wire carries the inFlight taint below.
	outreq := wire.req.WithContext(tryCtx)

	// The latency fed to the breaker must come off the same clock as the
	// breaker's dwell (Resilience.Now): measuring it with the naked wall
	// clock made SlowThreshold accounting invisible to injected clocks —
	// chaos replays and tests saw breakers that never tripped on slowness.
	up.pending.Add(1)
	start := g.res.Now()
	wire.inFlight = true
	resp, err := g.rt.RoundTrip(outreq)
	latency := g.res.Now().Sub(start)
	up.pending.Add(-1)
	if parent.Err() == nil && g.res.Now().Before(deadline) {
		// Only outcomes the request deadline did not cause feed the
		// breaker: a client hanging up is not the node's fault.
		if up.breaker.Observe(latency, err != nil) {
			g.breakerOpens.Add(1)
		}
	}
	if err != nil {
		// The transport's write loop may still reference the request
		// memory after an error, so the wire stays tainted (inFlight) and
		// reset will abandon it rather than re-pool it.
		sc.finishAttempt()
		return nil, err
	}
	// Headers arrived: the attempt has succeeded. Re-arm the per-try
	// timer to the remaining request deadline to bound body streaming;
	// writeResponse (or the deferred reset on abort) settles it.
	if rem := deadline.Sub(g.res.Now()); rem > 0 {
		timer.Reset(rem)
	}
	return resp, nil
}

// writeResponse streams one upstream response to the client through the
// pooled copy buffer, then settles the attempt and — for bodyless
// requests — marks the wire scratch clean for reuse.
func (g *Gateway) writeResponse(w http.ResponseWriter, sc *proxyScratch, resp *http.Response) {
	stripHopByHop(resp.Header)
	wh := w.Header()
	for k, vv := range resp.Header {
		wh[k] = vv
	}
	w.WriteHeader(resp.StatusCode)
	bufp := copyBufPool.Get().(*[]byte)
	// writerOnly masks the ResponseWriter's ReaderFrom so the copy
	// actually uses the pooled buffer; it lives in the scratch because a
	// fresh interface wrapper per request is itself an allocation.
	sc.wo.Writer = w
	_, err := io.CopyBuffer(&sc.wo, resp.Body, *bufp)
	sc.wo.Writer = nil
	copyBufPool.Put(bufp)
	if err != nil {
		_ = resp.Body.Close()
		// Headers and part of the body are already on the wire, so the
		// truncation cannot be turned into an error response. Abort the
		// downstream connection instead of letting the server close out
		// the encoding as if the body were complete — a silently
		// truncated 200 is worse than a torn connection. The deferred
		// reset releases the try context.
		g.truncated.Add(1)
		panic(http.ErrAbortHandler)
	}
	_ = resp.Body.Close()
	sc.finishAttempt()
	sc.wireClean()
}

// probeLoop drives active health probing: every ProbeInterval it asks
// each breaker whether its open dwell has elapsed (ProbeDue claims the
// half-open slot, so exactly one probe flies per dwell) and probes the
// claimed upstreams concurrently.
func (g *Gateway) probeLoop() {
	defer g.watchWG.Done()
	//revelio:allow timeseam probe pacing needs a real channel to select against probeStop; breaker dwell judgments stay on the seam
	ticker := time.NewTicker(g.res.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.probeStop:
			return
		case <-ticker.C:
		}
		g.mu.Lock()
		domain := g.domain
		var due []*upstream
		for _, up := range g.ups {
			if up.breaker.ProbeDue() {
				due = append(due, up)
			}
		}
		g.mu.Unlock()
		for _, up := range due {
			g.watchWG.Add(1)
			go func(up *upstream) {
				defer g.watchWG.Done()
				g.probe(up, domain)
			}(up)
		}
	}
}

// probe sends one attested health check to a half-open upstream and
// reports the outcome to its breaker. Probes ride the gateway's RA-TLS
// transport, so a node whose attestation stopped verifying cannot pass.
func (g *Gateway) probe(up *upstream, domain string) {
	//revelio:allow ctxfirst probes are the gateway's own background process (stopped via probeStop); no caller context exists to thread
	ctx, cancel := context.WithTimeout(context.Background(), g.res.PerTryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"https://"+up.ep.UpstreamAddr+g.res.ProbePath, nil)
	if err != nil {
		g.probeFail.Add(1)
		up.breaker.ProbeResult(false)
		return
	}
	if domain != "" {
		req.Host = domain
	}
	resp, err := g.rt.RoundTrip(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if err == nil {
		// Drain through the pooled copy buffer (writerOnly masks
		// io.Discard's ReadFrom, which would otherwise bypass it).
		bufp := copyBufPool.Get().(*[]byte)
		_, _ = io.CopyBuffer(writerOnly{io.Discard}, io.LimitReader(resp.Body, 4096), *bufp)
		copyBufPool.Put(bufp)
		_ = resp.Body.Close()
	}
	if ok {
		g.probeOK.Add(1)
	} else {
		g.probeFail.Add(1)
	}
	up.breaker.ProbeResult(ok)
}

// Start opens the gateway's TLS listener on a loopback port. The
// serving certificate is resolved per handshake through
// Config.GetCertificate, so rotations reach live listeners.
func (g *Gateway) Start() error {
	if g.cfg.GetCertificate == nil {
		return errors.New("gateway: Start needs Config.GetCertificate")
	}
	// Bind the port before taking g.mu: every request holds the serving
	// view under that lock's neighbors, and a slow bind (exhausted
	// ephemeral ports, LSM hooks) must not stall them.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("gateway: listen: %w", err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		_ = ln.Close()
		return ErrClosed
	}
	if g.listener != nil {
		_ = ln.Close()
		return errors.New("gateway: already started")
	}
	serverTLS := &tls.Config{
		GetCertificate: func(*tls.ClientHelloInfo) (*tls.Certificate, error) {
			return g.cfg.GetCertificate()
		},
	}
	// Take ownership of the session-ticket key now (disabling crypto/tls's
	// automatic rotation): the key is policy state, rotated on every
	// epoch bump by checkPolicyEpoch so old tickets stop resuming.
	rotateTicketKey(serverTLS)
	tlsLn := tls.NewListener(ln, serverTLS)
	g.serverTLS = serverTLS
	g.listener = ln
	g.server = &http.Server{
		Handler:           g,
		ReadHeaderTimeout: 10 * time.Second,
		// WriteTimeout caps how long a slow or stalled client can hold
		// the serving-view admission (see Config.WriteTimeout).
		WriteTimeout: g.cfg.WriteTimeout,
		IdleTimeout:  2 * time.Minute,
	}
	srv := g.server
	go func() { _ = srv.Serve(tlsLn) }()
	return nil
}

// Addr returns the gateway's listen address (host:port), or "" before
// Start.
func (g *Gateway) Addr() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.listener == nil {
		return ""
	}
	return g.listener.Addr().String()
}

// Stats reports the data plane's counters and current ejections.
func (g *Gateway) Stats() Stats {
	s := Stats{
		Requests:           g.requests.Load(),
		Retries:            g.retries.Load(),
		SheddedRequests:    g.shed.Load(),
		BreakerOpens:       g.breakerOpens.Load(),
		ProbeSuccesses:     g.probeOK.Load(),
		ProbeFailures:      g.probeFail.Load(),
		PolicyFlushes:      g.flushes.Load(),
		TruncatedResponses: g.truncated.Load(),
	}
	g.router.snapshotStats(&s)
	g.mu.Lock()
	s.PolicyEpoch = g.epoch
	s.ViewVersion = g.version
	for addr, up := range g.ups {
		if up.ejected.Load() {
			s.Ejected = append(s.Ejected, addr)
		}
		if up.breaker.State() != resilience.BreakerClosed {
			s.BreakerOpen = append(s.BreakerOpen, addr)
		}
	}
	g.mu.Unlock()
	sort.Strings(s.Ejected)
	sort.Strings(s.BreakerOpen)
	return s
}

// Close stops the listener, the view watcher, the probe loop, and the
// upstream pools. Idempotent and safe for concurrent use.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	close(g.probeStop)
	server, unsub := g.server, g.unsub
	g.server, g.listener = nil, nil
	g.mu.Unlock()

	if unsub != nil {
		unsub()
	}
	g.watchWG.Wait()
	if server != nil {
		//revelio:allow ctxfirst Close is the end of the gateway's lifecycle — there is no caller context left to inherit, and the grace is bounded
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = server.Shutdown(ctx)
		cancel()
		_ = server.Close()
	}
	g.transport.CloseIdleConnections()
}
