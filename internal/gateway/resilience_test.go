package gateway

import (
	"crypto/tls"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"revelio/attestation"
	"revelio/internal/fleet"
)

// startGatewayRes is startGateway with explicit resilience knobs.
func startGatewayRes(t *testing.T, src Source, v attestation.Verifier, res Resilience) (*Gateway, *http.Client) {
	t.Helper()
	cert := selfSigned(t)
	g, err := New(Config{
		Source:         src,
		Verifier:       v,
		GetCertificate: func() (*tls.Certificate, error) { return &cert, nil },
		Resilience:     res,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	client := &http.Client{
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{InsecureSkipVerify: true}, //nolint:gosec // test client
		},
		Timeout: 30 * time.Second,
	}
	t.Cleanup(client.CloseIdleConnections)
	return g, client
}

// stallHandler blocks every request — health probes included — while
// stalled, and serves id otherwise. It also counts non-probe hits, so
// tests can prove a breaker-open node receives no client traffic.
type stallHandler struct {
	id      string
	stalled atomic.Bool
	hits    atomic.Int64
}

func (h *stallHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != fleet.HealthPath {
		h.hits.Add(1)
	}
	if h.stalled.Load() {
		<-r.Context().Done()
		return
	}
	_, _ = w.Write([]byte(h.id))
}

// blackhole opens a listener that accepts and immediately closes every
// connection — a node that is reachable but never completes a
// handshake — counting accepts so tests can measure attempt
// amplification and post-trip pick suppression.
func blackhole(t *testing.T) (addr string, accepts *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			n.Add(1)
			_ = c.Close()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String(), &n
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, within time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", within, msg)
}

// TestGatewayStalledUpstreamFailsOverWithinPerTryBudget: a node that
// accepts the connection and never sends response headers must cost a
// request at most the per-try budget before it fails over — not the
// 30s WriteTimeout it cost before the per-attempt deadline existed.
func TestGatewayStalledUpstreamFailsOverWithinPerTryBudget(t *testing.T) {
	provider, _, _ := softProvider(t, "stall")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	stalled := &stallHandler{id: "stalled"}
	stalled.stalled.Store(true)
	stalledAddr := startUpstream(t, provider, stalled)
	okAddr := startUpstream(t, provider, idHandler("ok"))

	view := NewView(testDomain, serving(stalledAddr), serving(okAddr))
	g, client := startGatewayRes(t, view, mux, Resilience{
		PerTryTimeout:  250 * time.Millisecond,
		BreakerOpenFor: time.Minute, // keep the tripped node out for the whole test
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
	})

	// Every request must land on the healthy node within roughly one
	// per-try budget, whichever node the balancer tries first.
	for i := 0; i < 6; i++ {
		start := time.Now()
		body, status := get(t, client, "https://"+g.Addr()+"/")
		elapsed := time.Since(start)
		if status != http.StatusOK || body != "ok" {
			t.Fatalf("request %d: status=%d body=%q", i, status, body)
		}
		if elapsed > 1500*time.Millisecond {
			t.Fatalf("request %d took %v; failover must cost at most the per-try budget", i, elapsed)
		}
	}
}

// TestGatewayBreakerStopsPicksAfterTrip: consecutive transport failures
// must take a node out of rotation globally — before the breaker, the
// exclusion map was rebuilt per request, so a dead node kept receiving
// a connection attempt from every new request forever.
func TestGatewayBreakerStopsPicksAfterTrip(t *testing.T) {
	provider, _, _ := softProvider(t, "blackhole")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	deadAddr, accepts := blackhole(t)
	okAddr := startUpstream(t, provider, idHandler("ok"))

	view := NewView(testDomain, serving(deadAddr), serving(okAddr))
	g, client := startGatewayRes(t, view, mux, Resilience{
		BreakerFailures: 2,
		BreakerOpenFor:  time.Minute, // no probe re-entry during the test
		BackoffBase:     time.Millisecond,
		BackoffMax:      4 * time.Millisecond,
	})

	// Drive traffic until the breaker trips; every request still
	// succeeds by failing over to the healthy node.
	tripped := false
	for i := 0; i < 20 && !tripped; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK || body != "ok" {
			t.Fatalf("request %d: status=%d body=%q", i, status, body)
		}
		s := g.Stats()
		tripped = len(s.BreakerOpen) == 1 && s.BreakerOpen[0] == deadAddr
	}
	if !tripped {
		t.Fatalf("breaker never tripped for %s: stats=%+v", deadAddr, g.Stats())
	}
	if s := g.Stats(); s.BreakerOpens == 0 {
		t.Fatalf("BreakerOpens = 0 after a trip: %+v", s)
	}

	// The tripped node must receive no further connection attempts from
	// client traffic (and no probes either — the dwell is a minute).
	before := accepts.Load()
	for i := 0; i < 20; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK || body != "ok" {
			t.Fatalf("post-trip request %d: status=%d body=%q", i, status, body)
		}
	}
	if after := accepts.Load(); after != before {
		t.Fatalf("breaker-open node received %d connection attempts after the trip", after-before)
	}
}

// TestGatewayRetryAmplificationBounded: under a full-fleet blackhole,
// the total upstream attempts for one client request is the configured
// retry budget — not len(Serving()), which is what the pre-budget
// retry loop amplified to.
func TestGatewayRetryAmplificationBounded(t *testing.T) {
	for _, budget := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			provider, _, _ := softProvider(t, "amplify")
			mux := attestation.NewMux()
			mux.RegisterProvider(provider)

			// Five dead nodes: more than any budget in the table, so the
			// old walk-the-fleet behavior would exceed every bound here.
			const fleetSize = 5
			counters := make([]*atomic.Int64, fleetSize)
			eps := make([]fleet.Endpoint, fleetSize)
			for i := range eps {
				addr, accepts := blackhole(t)
				counters[i] = accepts
				eps[i] = serving(addr)
			}

			view := NewView(testDomain, eps...)
			g, client := startGatewayRes(t, view, mux, Resilience{
				RetryBudget:     budget,
				BreakerFailures: 100, // keep breakers out of the attempt count
				BackoffBase:     time.Millisecond,
				BackoffMax:      2 * time.Millisecond,
			})

			_, status := get(t, client, "https://"+g.Addr()+"/")
			if status != http.StatusBadGateway {
				t.Fatalf("status = %d, want 502 under a full blackhole", status)
			}
			var total int64
			for _, c := range counters {
				total += c.Load()
			}
			if total > int64(budget) {
				t.Fatalf("one request made %d upstream attempts, budget is %d", total, budget)
			}
			if total == 0 {
				t.Fatal("request made no upstream attempts at all")
			}
			if s := g.Stats(); s.Retries != total-1 {
				t.Fatalf("Retries = %d, want %d (attempts beyond the first)", s.Retries, total-1)
			}
		})
	}
}

// TestGatewayShedsOverload: beyond MaxInFlight the gateway answers 503
// + Retry-After immediately instead of queueing, and the shed is
// counted separately from failures.
func TestGatewayShedsOverload(t *testing.T) {
	provider, _, _ := softProvider(t, "overload")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	release := make(chan struct{})
	var entered atomic.Int64
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
		_, _ = w.Write([]byte("done"))
	})
	addr := startUpstream(t, provider, slow)

	view := NewView(testDomain, serving(addr))
	g, client := startGatewayRes(t, view, mux, Resilience{
		MaxInFlight:    2,
		PerTryTimeout:  5 * time.Second,
		RequestTimeout: 10 * time.Second,
	})

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			body, status := get(t, client, "https://"+g.Addr()+"/")
			if status != http.StatusOK || body != "done" {
				results <- fmt.Errorf("held request: status=%d body=%q", status, body)
				return
			}
			results <- nil
		}()
	}
	waitFor(t, 5*time.Second, func() bool { return entered.Load() == 2 },
		"both held requests in flight")

	resp, err := client.Get("https://" + g.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 shed beyond MaxInFlight", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if s := g.Stats(); s.SheddedRequests == 0 {
		t.Fatalf("SheddedRequests = 0 after a shed: %+v", s)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}

// TestGatewayPerUpstreamBoundSheds: a single upstream at its in-flight
// bound is skipped as saturated; when every paced re-pick finds only
// saturation, the request sheds rather than reporting upstream failure.
func TestGatewayPerUpstreamBoundSheds(t *testing.T) {
	provider, _, _ := softProvider(t, "saturate")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	release := make(chan struct{})
	var entered atomic.Int64
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
		_, _ = w.Write([]byte("done"))
	})
	addr := startUpstream(t, provider, slow)

	view := NewView(testDomain, serving(addr))
	g, client := startGatewayRes(t, view, mux, Resilience{
		MaxPerUpstream: 1,
		PerTryTimeout:  5 * time.Second,
		RequestTimeout: 10 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
	})

	held := make(chan error, 1)
	go func() {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK || body != "done" {
			held <- fmt.Errorf("held request: status=%d body=%q", status, body)
			return
		}
		held <- nil
	}()
	waitFor(t, 5*time.Second, func() bool { return entered.Load() == 1 },
		"held request in flight")

	resp, err := client.Get("https://" + g.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 when the only upstream is saturated", resp.StatusCode)
	}

	close(release)
	if err := <-held; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayDeadlineHeaderPropagation: an inbound deadline below
// MinDeadline sheds without an upstream attempt; a workable one reaches
// the node rewritten to the attempt's carved budget.
func TestGatewayDeadlineHeaderPropagation(t *testing.T) {
	provider, _, _ := softProvider(t, "deadline")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	var sawBudget atomic.Int64
	echo := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ms, err := strconv.ParseInt(r.Header.Get(DeadlineHeader), 10, 64); err == nil {
			sawBudget.Store(ms)
		}
		_, _ = w.Write([]byte("ok"))
	})
	addr := startUpstream(t, provider, echo)
	view := NewView(testDomain, serving(addr))
	g, client := startGatewayRes(t, view, mux, Resilience{})

	// 1ms of budget is below the default MinDeadline: shed, no attempt.
	req, err := http.NewRequest(http.MethodGet, "https://"+g.Addr()+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, "1")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 for a sub-MinDeadline budget", resp.StatusCode)
	}
	if n := sawBudget.Load(); n != 0 {
		t.Fatalf("shed request still reached the upstream (saw %dms)", n)
	}

	// A 5s budget is carved across the retry budget and forwarded.
	req.Header.Set(DeadlineHeader, "5000")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if n := sawBudget.Load(); n <= 0 || n > 5000 {
		t.Fatalf("upstream saw %dms of budget, want within (0, 5000]", n)
	}
}

// TestGatewayProbeReadmitsRecoveredUpstream: a tripped node re-enters
// rotation only through a successful health probe — and while open it
// receives probes only, never client traffic.
func TestGatewayProbeReadmitsRecoveredUpstream(t *testing.T) {
	provider, _, _ := softProvider(t, "probe")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	flaky := &stallHandler{id: "flaky"}
	flaky.stalled.Store(true)
	flakyAddr := startUpstream(t, provider, flaky)
	okAddr := startUpstream(t, provider, idHandler("ok"))

	view := NewView(testDomain, serving(flakyAddr), serving(okAddr))
	g, client := startGatewayRes(t, view, mux, Resilience{
		PerTryTimeout:   150 * time.Millisecond,
		BreakerFailures: 2,
		BreakerOpenFor:  50 * time.Millisecond,
		ProbeInterval:   20 * time.Millisecond,
		BackoffBase:     time.Millisecond,
		BackoffMax:      4 * time.Millisecond,
	})

	// Trip the stalled node's breaker through normal traffic.
	for i := 0; i < 20; i++ {
		if _, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		if s := g.Stats(); len(s.BreakerOpen) == 1 && s.BreakerOpen[0] == flakyAddr {
			break
		}
	}
	if s := g.Stats(); len(s.BreakerOpen) != 1 || s.BreakerOpen[0] != flakyAddr {
		t.Fatalf("breaker never tripped: %+v", s)
	}

	// While still stalled, probes run and fail: the node stays open and
	// sees no client traffic (the stall handler counts non-probe hits).
	clientHits := flaky.hits.Load()
	waitFor(t, 3*time.Second, func() bool { return g.Stats().ProbeFailures > 0 },
		"failed probes against the still-stalled node")
	for i := 0; i < 10; i++ {
		if body, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK || body != "ok" {
			t.Fatalf("request during open state: status=%d body=%q", status, body)
		}
	}
	if n := flaky.hits.Load(); n != clientHits {
		t.Fatalf("breaker-open node received %d client requests (probes only allowed)", n-clientHits)
	}

	// Recover the node: the next successful probe closes the breaker and
	// traffic returns.
	flaky.stalled.Store(false)
	waitFor(t, 5*time.Second, func() bool { return len(g.Stats().BreakerOpen) == 0 },
		"breaker to close after recovery")
	if s := g.Stats(); s.ProbeSuccesses == 0 {
		t.Fatalf("breaker closed without a successful probe: %+v", s)
	}
	waitFor(t, 5*time.Second, func() bool {
		_, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK {
			t.Fatalf("post-recovery request: status %d", status)
		}
		return flaky.hits.Load() > clientHits
	}, "recovered node to receive client traffic again")
}

// TestGatewayGrayFailureTrips: a node that answers successfully but
// slower than BreakerSlow is treated as failed — the gray-failure
// detector — and leaves rotation like a dead one.
func TestGatewayGrayFailureTrips(t *testing.T) {
	provider, _, _ := softProvider(t, "gray")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	var slowHits atomic.Int64
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != fleet.HealthPath {
			slowHits.Add(1)
		}
		time.Sleep(60 * time.Millisecond)
		_, _ = w.Write([]byte("slow"))
	})
	slowAddr := startUpstream(t, provider, slow)
	okAddr := startUpstream(t, provider, idHandler("ok"))

	view := NewView(testDomain, serving(slowAddr), serving(okAddr))
	g, client := startGatewayRes(t, view, mux, Resilience{
		BreakerFailures: 2,
		BreakerSlow:     20 * time.Millisecond,
		BreakerOpenFor:  time.Minute, // stay open for the whole test
		BackoffBase:     time.Millisecond,
		BackoffMax:      4 * time.Millisecond,
	})

	tripped := false
	for i := 0; i < 30 && !tripped; i++ {
		if _, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		s := g.Stats()
		tripped = len(s.BreakerOpen) == 1 && s.BreakerOpen[0] == slowAddr
	}
	if !tripped {
		t.Fatalf("slow-but-alive node never tripped: %+v", g.Stats())
	}

	before := slowHits.Load()
	for i := 0; i < 15; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK || body != "ok" {
			t.Fatalf("post-trip request %d: status=%d body=%q", i, status, body)
		}
	}
	if after := slowHits.Load(); after != before {
		t.Fatalf("gray-failed node received %d requests after the trip", after-before)
	}
}
