package gateway

import (
	"crypto/rand"
	"crypto/tls"
	"sync"
)

// TLS session resumption skips certificate verification on both of the
// gateway's planes: an upstream resumption skips VerifyPeerCertificate
// (the RA-TLS evidence check), a downstream resumption skips
// GetCertificate (the rotating fleet credential). Resumption is still
// wanted — it is the difference between one signature and zero on the
// reconnect path at high connection counts — so both planes fence it by
// the gateway's policy epoch instead of disabling it:
//
//   - upstream, epochSessionCache tags every stored session with the
//     epoch it was minted under and refuses to resume across a bump, so
//     a revocation forces the next connection through a full, verified
//     handshake (and VerifyConnection re-judges the evidence of the
//     resumptions that are allowed);
//   - downstream, the session-ticket key rotates to a fresh random key
//     on every bump, so outstanding tickets die and clients re-enter
//     through GetCertificate.

// defaultSessionCacheSize bounds the upstream session cache; sessions
// are keyed per node address, so this only needs to cover the fleet.
const defaultSessionCacheSize = 256

// epochSessionCache is a tls.ClientSessionCache fenced by a monotone
// epoch (the gateway's policy epoch): sessions stored under an older
// epoch are never resumed. The shape mirrors ratls's
// revisionBoundSessionCache, with the gateway's accumulated epoch in
// place of a single verifier's revision.
type epochSessionCache struct {
	epoch func() uint64
	cap   int

	mu     sync.Mutex
	inner  tls.ClientSessionCache
	epochs map[string]uint64 // session key -> epoch at Put time
}

func newEpochSessionCache(epoch func() uint64, capacity int) *epochSessionCache {
	if capacity <= 0 {
		capacity = defaultSessionCacheSize
	}
	return &epochSessionCache{
		epoch:  epoch,
		cap:    capacity,
		inner:  tls.NewLRUClientSessionCache(capacity),
		epochs: make(map[string]uint64, capacity),
	}
}

func (c *epochSessionCache) Put(key string, cs *tls.ClientSessionState) {
	c.mu.Lock()
	if cs == nil {
		delete(c.epochs, key)
	} else {
		c.epochs[key] = c.epoch()
		// Bound the bookkeeping: the inner LRU holds at most cap live
		// sessions, so entries beyond a small multiple belong to silently
		// evicted ones. Dropping a surplus entry is fail-closed — a
		// still-live session just re-handshakes.
		for len(c.epochs) > 2*c.cap {
			for k := range c.epochs {
				if k != key {
					delete(c.epochs, k)
					break
				}
			}
		}
	}
	inner := c.inner
	c.mu.Unlock()
	inner.Put(key, cs)
}

func (c *epochSessionCache) Get(key string) (*tls.ClientSessionState, bool) {
	c.mu.Lock()
	epoch, ok := c.epochs[key]
	stale := ok && epoch != c.epoch()
	if !ok || stale {
		delete(c.epochs, key)
	}
	inner := c.inner
	c.mu.Unlock()
	if !ok || stale {
		inner.Put(key, nil) // drop the unusable session
		return nil, false
	}
	return inner.Get(key)
}

// flush drops every stored session. The epoch fence alone already
// refuses stale resumptions; flushing on the bump additionally frees
// the ticket bytes promptly instead of leaving dead sessions to age out
// of the LRU.
func (c *epochSessionCache) flush() {
	c.mu.Lock()
	c.inner = tls.NewLRUClientSessionCache(c.cap)
	clear(c.epochs)
	c.mu.Unlock()
}

// rotateTicketKey installs a fresh random session-ticket key on the
// downstream TLS config, replacing — not appending to — the previous
// set, so every ticket minted before the call stops resuming. Called
// at Start (taking ownership of ticket keys from crypto/tls's automatic
// rotation) and on every policy-epoch bump.
func rotateTicketKey(cfg *tls.Config) {
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		// crypto/rand does not fail on supported platforms; if it ever
		// does, keeping the previous key is the only option that neither
		// breaks live handshakes nor installs a guessable key.
		return
	}
	cfg.SetSessionTicketKeys([][32]byte{key})
}
