package gateway

import (
	"context"
	"crypto/tls"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"revelio/attestation"
	"revelio/internal/core"
	"revelio/internal/fleet"
	"revelio/internal/measure"
)

// startGatewayRouted is startGateway with a routing policy installed.
func startGatewayRouted(t *testing.T, src Source, v attestation.Verifier, routing Routing) (*Gateway, *http.Client) {
	t.Helper()
	cert := selfSigned(t)
	g, err := New(Config{
		Source:         src,
		Verifier:       v,
		GetCertificate: func() (*tls.Certificate, error) { return &cert, nil },
		Routing:        routing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	client := &http.Client{
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{InsecureSkipVerify: true}, //nolint:gosec // test client
		},
		Timeout: 10 * time.Second,
	}
	t.Cleanup(client.CloseIdleConnections)
	return g, client
}

func testMeas(b byte) measure.Measurement {
	var m measure.Measurement
	m[0] = b
	return m
}

// flipHandler counts its hits and serves 500s while failing is set.
type flipHandler struct {
	id      string
	failing atomic.Bool
	hits    atomic.Int64
}

func (h *flipHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	h.hits.Add(1)
	if h.failing.Load() {
		http.Error(w, "canary failing", http.StatusInternalServerError)
		return
	}
	_, _ = io.WriteString(w, h.id)
}

// TestRoutingRuleFiltersByContext: hard rules pin path classes to TCB
// floors, providers and localities; requests matching no rule spread
// over everything.
func TestRoutingRuleFiltersByContext(t *testing.T) {
	provider, _, _ := softProvider(t, "rules")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	lowAddr := startUpstream(t, provider, idHandler("low"))
	highAddr := startUpstream(t, provider, idHandler("high"))
	zoneBAddr := startUpstream(t, provider, idHandler("zone-b"))

	low := serving(lowAddr)
	low.TCB, low.Provider, low.Locality = 7, "sev-snp", "zone-a"
	high := serving(highAddr)
	high.TCB, high.Provider, high.Locality = 9, "sev-snp", "zone-a"
	zoneB := serving(zoneBAddr)
	zoneB.TCB, zoneB.Provider, zoneB.Locality = 9, "soft-tdx", "zone-b"

	view := NewView(testDomain, low, high, zoneB)
	g, client := startGatewayRouted(t, view, mux, Routing{
		Rules: []RouteRule{
			{Name: "payments", PathPrefix: "/payments", MinTCB: 8, Providers: []string{"sev-snp"}},
			{Name: "zone-b-only", PathPrefix: "/zone-b", Localities: []string{"zone-b"}},
		},
	})

	for i := 0; i < 20; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/payments/charge")
		if status != http.StatusOK || body != "high" {
			t.Fatalf("/payments request %d: status=%d body=%q, want the TCB-9 sev-snp node", i, status, body)
		}
	}
	for i := 0; i < 20; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/zone-b/data")
		if status != http.StatusOK || body != "zone-b" {
			t.Fatalf("/zone-b request %d: status=%d body=%q, want the zone-b node", i, status, body)
		}
	}
	seen := map[string]int{}
	for i := 0; i < 60; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/open")
		if status != http.StatusOK {
			t.Fatalf("unconstrained request %d: status %d", i, status)
		}
		seen[body]++
	}
	for _, id := range []string{"low", "high", "zone-b"} {
		if seen[id] == 0 {
			t.Errorf("unconstrained traffic never reached %q: %v", id, seen)
		}
	}
	if s := g.Stats(); s.PolicyRejected != 0 {
		t.Errorf("PolicyRejected = %d, want 0", s.PolicyRejected)
	}
}

// TestRoutingPolicyDenied: a rule that excludes every serving endpoint
// refuses the request with 503 and no Retry-After — backing off cannot
// help until the policy or the fleet changes.
func TestRoutingPolicyDenied(t *testing.T) {
	provider, _, _ := softProvider(t, "denied")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	ep := serving(startUpstream(t, provider, idHandler("a")))
	ep.TCB = 7
	view := NewView(testDomain, ep)
	g, client := startGatewayRouted(t, view, mux, Routing{
		Rules: []RouteRule{{Name: "strict", PathPrefix: "/payments", MinTCB: 8}},
	})

	resp, err := client.Get("https://" + g.Addr() + "/payments/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), ErrNoPolicyUpstreams.Error()) {
		t.Fatalf("body = %q, want it to name %q", body, ErrNoPolicyUpstreams.Error())
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Errorf("policy denial carried Retry-After %q; it is not a shed", ra)
	}
	// Out-of-policy paths refuse, in-policy paths still serve.
	if body, status := get(t, client, "https://"+g.Addr()+"/open"); status != http.StatusOK || body != "a" {
		t.Fatalf("unconstrained path: status=%d body=%q", status, body)
	}
	s := g.Stats()
	if s.PolicyRejected != 1 {
		t.Errorf("PolicyRejected = %d, want 1", s.PolicyRejected)
	}
	if s.SheddedRequests != 0 {
		t.Errorf("SheddedRequests = %d, want 0 — policy denial must not count as shed", s.SheddedRequests)
	}
}

// TestRoutingProviderSplit: a 3:1 split steers exactly that share of
// traffic when both providers are healthy (the weighted counter is
// deterministic, so the fractions are exact, not statistical).
func TestRoutingProviderSplit(t *testing.T) {
	provider, _, _ := softProvider(t, "split")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	a := serving(startUpstream(t, provider, idHandler("a")))
	a.Provider = "sev-snp"
	b := serving(startUpstream(t, provider, idHandler("b")))
	b.Provider = "soft-tdx"
	view := NewView(testDomain, a, b)
	g, client := startGatewayRouted(t, view, mux, Routing{
		Splits: []TrafficSplit{
			{Provider: "sev-snp", Weight: 3},
			{Provider: "soft-tdx", Weight: 1},
		},
	})

	seen := map[string]int{}
	for i := 0; i < 200; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		seen[body]++
	}
	if seen["a"] != 150 || seen["b"] != 50 {
		t.Errorf("split = %v, want exactly a:150 b:50", seen)
	}
}

// TestRoutingSplitFallsBack: a preference for a provider with no
// healthy node must not fail requests — the split is soft.
func TestRoutingSplitFallsBack(t *testing.T) {
	provider, _, _ := softProvider(t, "fallback")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	a := serving(startUpstream(t, provider, idHandler("a")))
	a.Provider = "sev-snp"
	view := NewView(testDomain, a)
	g, client := startGatewayRouted(t, view, mux, Routing{
		Splits: []TrafficSplit{
			{Provider: "sev-snp", Weight: 1},
			{Provider: "soft-tdx", Weight: 1}, // nobody serves this
		},
	})
	for i := 0; i < 20; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK || body != "a" {
			t.Fatalf("request %d: status=%d body=%q", i, status, body)
		}
	}
}

// TestCanaryFractionAndRollback drives the full canary lifecycle over a
// View: a staged rollout steers exactly the configured fraction to the
// canary measurement; when the canary starts failing, auto-rollback
// fires once, traffic stops reaching the canary, and ending the rollout
// clears the state.
func TestCanaryFractionAndRollback(t *testing.T) {
	provider, _, _ := softProvider(t, "canary")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	baseMeas, canaryMeas := testMeas(1), testMeas(2)
	baseH1, baseH2 := &flipHandler{id: "base1"}, &flipHandler{id: "base2"}
	canaryH := &flipHandler{id: "canary"}
	base1 := serving(startUpstream(t, provider, baseH1))
	base1.Measurement = baseMeas
	base2 := serving(startUpstream(t, provider, baseH2))
	base2.Measurement = baseMeas
	canary := serving(startUpstream(t, provider, canaryH))
	canary.Measurement = canaryMeas

	view := NewView(testDomain, base1, base2, canary)
	g, client := startGatewayRouted(t, view, mux, Routing{
		Canary: CanaryConfig{Weight: 25, MaxFailureRate: 0.5, MinSamples: 10},
	})

	// No rollout staged: the canary-measurement node is an ordinary
	// member of the rotation (no steering).
	for i := 0; i < 12; i++ {
		if _, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK {
			t.Fatalf("pre-rollout request %d: status %d", i, status)
		}
	}

	// Stage the rollout: exactly Weight% of the next 100 requests must
	// land on the canary (the fraction counter is deterministic).
	view.SetRollout(canaryMeas, &baseMeas)
	canaryH.hits.Store(0)
	for i := 0; i < 100; i++ {
		if _, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK {
			t.Fatalf("staged request %d: status %d", i, status)
		}
	}
	if got := canaryH.hits.Load(); got != 25 {
		t.Errorf("canary received %d/100 staged requests, want exactly 25", got)
	}
	if s := g.Stats(); s.CanaryRequests != 25 || s.CanaryFailures != 0 || s.CanaryRolledBack {
		t.Errorf("healthy-canary stats = %+v", s)
	}

	// The canary starts failing: clients see its 500s (the gateway does
	// not retry served responses), and once MinSamples attempts show the
	// failure rate the rollback fires.
	canaryH.failing.Store(true)
	rolledBack := false
	for i := 0; i < 400 && !rolledBack; i++ {
		resp, err := client.Get("https://" + g.Addr() + "/")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		rolledBack = g.Stats().CanaryRolledBack
	}
	if !rolledBack {
		t.Fatal("canary auto-rollback never fired")
	}

	// Rolled back: the canary measurement is excluded outright; every
	// request serves 200 from the base nodes and the canary's counter
	// holds still.
	frozen := canaryH.hits.Load()
	for i := 0; i < 40; i++ {
		if _, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK {
			t.Fatalf("post-rollback request %d: status %d", i, status)
		}
	}
	if got := canaryH.hits.Load(); got != frozen {
		t.Errorf("rolled-back canary received %d more requests", got-frozen)
	}
	s := g.Stats()
	if s.CanaryRollbacks != 1 || !s.CanaryRolledBack {
		t.Errorf("rollback stats = %+v, want exactly one rollback", s)
	}
	if s.CanaryMeasurement != canaryMeas.String() {
		t.Errorf("CanaryMeasurement = %q, want %q", s.CanaryMeasurement, canaryMeas.String())
	}

	// The operator ends the rollout (commit or abort): the exclusion
	// lifts and the canary state clears.
	view.SetRollout(baseMeas, nil)
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().CanaryRolledBack && time.Now().Before(deadline) {
		_, _ = get(t, client, "https://"+g.Addr()+"/")
	}
	if s := g.Stats(); s.CanaryRolledBack {
		t.Error("rollback exclusion survived the rollout ending")
	}
}

// TestCanaryPrefersFallback: canary steering with no healthy canary
// node must fall back to the base set, never fail the request.
func TestCanaryPrefersFallback(t *testing.T) {
	provider, _, _ := softProvider(t, "canary-fallback")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	baseMeas, canaryMeas := testMeas(3), testMeas(4)
	base := serving(startUpstream(t, provider, idHandler("base")))
	base.Measurement = baseMeas
	view := NewView(testDomain, base)
	view.SetRollout(canaryMeas, &baseMeas)
	g, client := startGatewayRouted(t, view, mux, Routing{
		Canary: CanaryConfig{Weight: 100},
	})
	for i := 0; i < 20; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK || body != "base" {
			t.Fatalf("request %d: status=%d body=%q", i, status, body)
		}
	}
}

// TestCanaryRollbackDeniesWhenAlone: after rollback, the canary
// measurement is excluded as hard as a rule — if nothing else serves,
// requests are refused as out of policy rather than routed to the
// image that just failed.
func TestCanaryRollbackDeniesWhenAlone(t *testing.T) {
	provider, _, _ := softProvider(t, "canary-alone")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	baseMeas, canaryMeas := testMeas(5), testMeas(6)
	canaryH := &flipHandler{id: "canary"}
	canaryH.failing.Store(true)
	canary := serving(startUpstream(t, provider, canaryH))
	canary.Measurement = canaryMeas
	view := NewView(testDomain, canary)
	view.SetRollout(canaryMeas, &baseMeas)
	g, client := startGatewayRouted(t, view, mux, Routing{
		Canary: CanaryConfig{Weight: 100, MaxFailureRate: 0.5, MinSamples: 2},
	})

	for i := 0; i < 2; i++ {
		if _, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusInternalServerError {
			t.Fatalf("failing-canary request %d: status %d, want 500", i, status)
		}
	}
	body, status := get(t, client, "https://"+g.Addr()+"/")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, ErrNoPolicyUpstreams.Error()) {
		t.Fatalf("post-rollback request: status=%d body=%q, want policy 503", status, body)
	}
	if s := g.Stats(); s.CanaryRollbacks != 1 || s.PolicyRejected != 1 {
		t.Errorf("stats = %+v, want one rollback and one policy rejection", s)
	}
}

// TestCanaryAutoRollbackUnderChurn is the end-to-end rollout drill over
// a real fleet: StageFirmware stages a canary image, a joined canary
// node starts failing mid-rollout while membership keeps changing, and
// the gateway must (1) fire auto-rollback exactly once, (2) never again
// route a request to any node on the rolled-back measurement — per-node
// hit counters prove it — and (3) recover cleanly through the
// emergency path: canary nodes removed, AbortRollOut, fleet verifies.
func TestCanaryAutoRollbackUnderChurn(t *testing.T) {
	ctx := context.Background()

	type nodeApp struct {
		hits atomic.Int64
		meas measure.Measurement
	}
	var mu sync.Mutex
	apps := map[string]*nodeApp{}
	var failMeas atomic.Value // measure.Measurement that serves 500s

	f, err := fleet.New(ctx, fleet.Config{
		Nodes: 3,
		App: func(n *core.Node) http.Handler {
			a := &nodeApp{meas: n.VM.Measurement()}
			mu.Lock()
			apps[n.ControlURL()] = a
			mu.Unlock()
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == fleet.HealthPath {
					_, _ = io.WriteString(w, "ok")
					return
				}
				a.hits.Add(1)
				if fm, ok := failMeas.Load().(measure.Measurement); ok && fm == a.meas {
					http.Error(w, "canary failing", http.StatusInternalServerError)
					return
				}
				_, _ = io.WriteString(w, "ok")
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g, client := startGatewayRouted(t, f, f.Mux(), Routing{
		Canary: CanaryConfig{Weight: 50, MaxFailureRate: 0.5, MinSamples: 5},
	})

	for i := 0; i < 10; i++ {
		if _, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK {
			t.Fatalf("baseline request %d: status %d", i, status)
		}
	}

	// Stage the rollout and join the canary node (it boots the staged
	// image, so it carries the new golden measurement).
	newGolden, err := f.StageFirmware(ctx, "2024.02")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddNode(ctx); err != nil {
		t.Fatal(err)
	}

	// The canary image is broken: every canary-measurement node serves
	// 500s (health excluded, so breakers stay closed — the failure mode
	// is the application's, not the transport's).
	failMeas.Store(newGolden)

	// Drive traffic until the rollback fires, churning membership mid
	// rollout: another canary-measurement node joins while the first one
	// is already failing.
	rolledBack := false
	for i := 0; i < 400 && !rolledBack; i++ {
		if i == 4 {
			if _, err := f.AddNode(ctx); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := client.Get("https://" + g.Addr() + "/")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		rolledBack = g.Stats().CanaryRolledBack
	}
	if !rolledBack {
		t.Fatal("canary auto-rollback never fired")
	}

	// More churn after the rollback: a base node leaves. The rollback
	// must survive the membership changes without firing again.
	if err := f.RemoveNode(ctx, 0); err != nil {
		t.Fatal(err)
	}

	canaryHits := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		var n int64
		for _, a := range apps {
			if a.meas == newGolden {
				n += a.hits.Load()
			}
		}
		return n
	}
	frozen := canaryHits()
	for i := 0; i < 40; i++ {
		if _, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK {
			t.Fatalf("post-rollback request %d: status %d", i, status)
		}
	}
	if got := canaryHits(); got != frozen {
		t.Errorf("rolled-back measurement received %d more requests after exclusion", got-frozen)
	}
	if s := g.Stats(); s.CanaryRollbacks != 1 {
		t.Errorf("CanaryRollbacks = %d, want exactly 1 through all the churn", s.CanaryRollbacks)
	}

	// Emergency recovery, in runbook order: retire the canary nodes
	// first, then abort the rollout (which revokes the canary
	// measurement), and the surviving fleet still verifies end to end.
	for {
		idx := -1
		for i, n := range f.Deployment().Nodes {
			if n.VM.Measurement() == newGolden {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		if err := f.RemoveNode(ctx, idx); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.AbortRollOut(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyFleet(ctx); err != nil {
		t.Fatalf("fleet failed verification after abort: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK {
			t.Fatalf("post-abort request %d: status %d", i, status)
		}
	}
	if s := g.Stats(); s.CanaryRolledBack {
		t.Error("rollback exclusion survived AbortRollOut")
	}
}
