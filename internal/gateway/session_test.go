package gateway

import (
	"crypto/tls"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"revelio/attestation"
)

// resumeHandler reports whether the upstream connection carrying the
// request was a resumed TLS session.
func resumeHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.TLS != nil && r.TLS.DidResume {
			_, _ = io.WriteString(w, "resumed")
			return
		}
		_, _ = io.WriteString(w, "full")
	})
}

// proxyOnce drives one request through the gateway handler directly (no
// downstream listener needed) and returns the upstream's body.
func proxyOnce(t *testing.T, g *Gateway) string {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "http://gw/", nil)
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("proxied request: status %d, body %q", rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}

// upstreamAfterRedial drops the gateway's warm connections and proxies
// once, so the answer reflects a fresh upstream handshake — resumed if
// the session cache supplied a ticket, full otherwise.
func upstreamAfterRedial(t *testing.T, g *Gateway) string {
	t.Helper()
	g.transport.CloseIdleConnections()
	return proxyOnce(t, g)
}

// TestGatewayUpstreamSessionResumption: the gateway's upstream transport
// actually resumes TLS sessions across its pooled connections — and a
// resumed handshake still re-judges the node's evidence, so resumption
// never skips the attestation verdict.
func TestGatewayUpstreamSessionResumption(t *testing.T) {
	provider := &testProvider{name: "resume-tee"}
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)
	addr := startUpstream(t, provider, resumeHandler())
	view := NewView(testDomain, serving(addr))
	g, err := New(Config{Source: view, Verifier: mux})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if got := proxyOnce(t, g); got != "full" {
		t.Fatalf("first handshake: got %q, want full", got)
	}
	// The session ticket arrives asynchronously after the handshake;
	// poll briefly for the first resumed reconnect.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := upstreamAfterRedial(t, g); got == "resumed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("upstream session never resumed across the pooled transport")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayUpstreamResumptionEpochFence: a cached upstream session
// must not survive a policy-revision bump. Without the epoch fence on
// the ClientSessionCache this fails — the post-bump reconnect would
// resume the pre-bump session and skip the full evidence handshake.
func TestGatewayUpstreamResumptionEpochFence(t *testing.T) {
	provider := &testProvider{name: "fence-tee"}
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)
	addr := startUpstream(t, provider, resumeHandler())
	view := NewView(testDomain, serving(addr))
	g, err := New(Config{Source: view, Verifier: mux})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Reach steady resumption first, so the fence — not a missing
	// ticket — is what forces the post-bump full handshake.
	if got := proxyOnce(t, g); got != "full" {
		t.Fatalf("first handshake: got %q, want full", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := upstreamAfterRedial(t, g); got == "resumed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reached steady resumption")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Bump the provider's policy revision. The next proxied request
	// notices the epoch move, flushes pools and sessions, and the
	// reconnect must prove itself with a full handshake.
	provider.rev.Add(1)
	if got := upstreamAfterRedial(t, g); got != "full" {
		t.Fatalf("post-bump handshake: got %q, want full (resumed session crossed the policy fence)", got)
	}
	// Resumption is fenced, not disabled: under the new epoch it works
	// again.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if got := upstreamAfterRedial(t, g); got == "resumed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resumption never recovered under the new epoch")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayDownstreamTicketRotation: the downstream listener's
// session-ticket key rotates on a policy-epoch bump, so a client ticket
// minted before the bump stops resuming — and resumption recovers under
// the new key.
func TestGatewayDownstreamTicketRotation(t *testing.T) {
	provider := &testProvider{name: "ticket-tee"}
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)
	addr := startUpstream(t, provider, idHandler("ok"))
	view := NewView(testDomain, serving(addr))
	g, _ := startGateway(t, view, mux)

	// A dedicated client with a session cache; resp.TLS reports whether
	// its connection's handshake was resumed.
	tr := &http.Transport{
		TLSClientConfig: &tls.Config{
			InsecureSkipVerify: true, //nolint:gosec // test client
			ClientSessionCache: tls.NewLRUClientSessionCache(8),
		},
	}
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	t.Cleanup(client.CloseIdleConnections)

	resumed := func() bool {
		t.Helper()
		tr.CloseIdleConnections()
		resp, err := client.Get("https://" + g.Addr() + "/")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp.TLS != nil && resp.TLS.DidResume
	}

	if resumed() {
		t.Fatal("first downstream handshake cannot be resumed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !resumed() {
		if time.Now().After(deadline) {
			t.Fatal("downstream session never resumed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Bump policy and let a proxied request observe it — that request
	// rotates the ticket key. The client's outstanding ticket must then
	// die: the next reconnect is a full handshake.
	provider.rev.Add(1)
	proxyOnce(t, g)
	if resumed() {
		t.Fatal("pre-bump ticket resumed after the policy-epoch rotation")
	}
	// And the new key mints working tickets again.
	deadline = time.Now().Add(5 * time.Second)
	for !resumed() {
		if time.Now().After(deadline) {
			t.Fatal("downstream resumption never recovered after rotation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
