package gateway

import (
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"revelio/attestation"
	"revelio/internal/fleet"
	"revelio/internal/resilience"
)

// TestGatewayStripsClientForwardedFor: the gateway is the trust
// boundary, so an X-Forwarded-For supplied by the outside client must
// never reach the nodes. Regression: forward() used to append the
// gateway-observed address to the inbound header, letting any client
// spoof an arbitrary source-IP chain past the proxy.
func TestGatewayStripsClientForwardedFor(t *testing.T) {
	provider, _, _ := softProvider(t, "xff")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	echo := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, r.Header.Get("X-Forwarded-For"))
	})
	view := NewView(testDomain, serving(startUpstream(t, provider, echo)))
	g, client := startGateway(t, view, mux)

	req, err := http.NewRequest(http.MethodGet, "https://"+g.Addr()+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Forwarded-For", "203.0.113.9")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "203.0.113.9") {
		t.Errorf("client-supplied X-Forwarded-For reached the upstream: %q", body)
	}
	if string(body) != "127.0.0.1" {
		t.Errorf("upstream saw X-Forwarded-For %q, want the gateway-observed client IP 127.0.0.1", body)
	}
}

// TestGatewayPolicyEpochSurvivesSourceChurn: a policy bump must flush
// the pools even when a revision source deregistered in between.
// Regression: the gateway used to compare the *sum* of source
// revisions; deregistering a source with revision R and then bumping a
// surviving source by R lands the sum back on its old value, and the
// revoked provider's warm pooled connections keep serving.
func TestGatewayPolicyEpochSurvivesSourceChurn(t *testing.T) {
	soft, softReg, softGolden := softProvider(t, "epoch-churn")
	extra := &testProvider{name: "extra"}
	extra.rev.Store(5)
	mux := attestation.NewMux()
	mux.RegisterProvider(soft)
	mux.RegisterProvider(extra)

	softAddr := startUpstream(t, soft, idHandler("soft"))
	view := NewView(testDomain, serving(softAddr))
	g, client := startGateway(t, view, mux)

	// Warm the pool: the upstream connection is verified and cached.
	if body, status := get(t, client, "https://"+g.Addr()+"/"); status != http.StatusOK || body != "soft" {
		t.Fatalf("warm-up: status=%d body=%q", status, body)
	}
	v0 := g.Stats().ViewVersion

	// The extra source drops out, and the view watcher rebuilds the
	// revision sources with no request (and hence no epoch check)
	// in between — the exact interleaving the sum was blind to.
	mux.Deregister("extra")
	view.Set(serving(softAddr))
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().ViewVersion <= v0 {
		if time.Now().After(deadline) {
			t.Fatal("view watcher never consumed the new version")
		}
		time.Sleep(time.Millisecond)
	}

	// Revoke the serving provider and bump its revision by exactly the
	// departed source's revision, landing the sum back on its old value.
	if err := softReg.Revoke(softGolden); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		soft.InvalidatePolicy()
	}

	flushes := g.Stats().PolicyFlushes
	resp, err := client.Get("https://" + g.Addr() + "/")
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Error("revoked provider's warm pool kept serving after the policy bump")
		}
	}
	if s := g.Stats(); s.PolicyFlushes <= flushes {
		t.Errorf("policy bump after source churn did not flush: flushes %d -> %d", flushes, s.PolicyFlushes)
	}
}

// TestGatewayAbortsTruncatedResponse: when the upstream dies mid-body,
// the gateway must tear the downstream connection down rather than let
// its server finish the response encoding. Regression: the copy error
// was swallowed, so clients saw a clean 200 with a silently truncated
// body.
func TestGatewayAbortsTruncatedResponse(t *testing.T) {
	provider, _, _ := softProvider(t, "truncate")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	trunc := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "partial")
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	})
	view := NewView(testDomain, serving(startUpstream(t, provider, trunc)))
	g, client := startGateway(t, view, mux)

	// The client must observe a torn connection — either on the request
	// itself (abort before the gateway flushed headers) or while reading
	// the body — never a cleanly terminated truncated 200.
	resp, err := client.Get("https://" + g.Addr() + "/")
	if err == nil {
		_, readErr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if readErr == nil {
			t.Fatal("truncated upstream body read cleanly through the gateway")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().TruncatedResponses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("TruncatedResponses never counted the aborted copy")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStatsEjectedSorted: Stats must report ejections in a stable
// order, independent of map iteration.
func TestStatsEjectedSorted(t *testing.T) {
	provider, _, _ := softProvider(t, "sorted")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)
	g, err := New(Config{Source: NewView(testDomain), Verifier: mux})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	g.mu.Lock()
	for _, addr := range []string{"9.9.9.9:1", "1.1.1.1:1", "5.5.5.5:1"} {
		up := &upstream{
			ep:      fleet.Endpoint{UpstreamAddr: addr, State: fleet.StateServing},
			breaker: resilience.NewBreaker(g.breakerConfig()),
		}
		up.ejected.Store(true)
		g.ups[addr] = up
	}
	g.mu.Unlock()

	s := g.Stats()
	if len(s.Ejected) != 3 || !sort.StringsAreSorted(s.Ejected) {
		t.Errorf("Ejected = %v, want 3 sorted addresses", s.Ejected)
	}
}
