package gateway

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"revelio/attestation"
	"revelio/attestation/softtee"
	"revelio/internal/fleet"
	"revelio/internal/measure"
	"revelio/internal/ratls"
	"revelio/internal/registry"
)

const testDomain = "gw.test.example.org"

// testProvider is a minimal second attestation provider: evidence is a
// signed-by-assertion JSON document, and a flipped switch revokes the
// whole provider — enough to prove the gateway's per-provider ejection
// isolation without standing up real TEE machinery.
type testProvider struct {
	name    string
	revoked atomic.Bool
	rev     atomic.Uint64
}

func (p *testProvider) Name() string { return p.name }

func (p *testProvider) PolicyRevision() uint64 { return p.rev.Load() }
func (p *testProvider) Now() time.Time         { return time.Now() }

func (p *testProvider) Issue(_ context.Context, payload []byte) (*attestation.Evidence, error) {
	doc, err := json.Marshal(map[string][]byte{"payload": payload})
	if err != nil {
		return nil, err
	}
	return &attestation.Evidence{Provider: p.name, Payload: payload, Document: doc}, nil
}

func (p *testProvider) VerifyEvidence(_ context.Context, ev *attestation.Evidence) (*attestation.Result, error) {
	if ev.Provider != p.name {
		return nil, fmt.Errorf("%w: %q", attestation.ErrUnknownProvider, ev.Provider)
	}
	var doc map[string][]byte
	if err := json.Unmarshal(ev.Document, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", attestation.ErrEvidenceInvalid, err)
	}
	if string(doc["payload"]) != string(ev.Payload) {
		return nil, attestation.ErrBindingMismatch
	}
	if p.revoked.Load() {
		return nil, fmt.Errorf("%w: test provider revoked", attestation.ErrRevoked)
	}
	return &attestation.Result{Provider: p.name, Payload: ev.Payload}, nil
}

// startUpstream opens an RA-TLS server whose certificate evidence comes
// from issuer, serving handler.
func startUpstream(t *testing.T, issuer attestation.Issuer, handler http.Handler) (addr string) {
	t.Helper()
	cert, err := ratls.CreateProviderCertificate(context.Background(), issuer, testDomain)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}})) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

// plainUpstream opens a TLS server with an ordinary self-signed
// certificate — no attestation evidence at all.
func plainUpstream(t *testing.T, handler http.Handler) (addr string) {
	t.Helper()
	cert := selfSigned(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}})) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

func selfSigned(t *testing.T) tls.Certificate {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: testDomain},
		DNSNames:     []string{testDomain},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
}

// softProvider stands up a softtee platform/enclave/verifier with a
// revocable registry policy.
func softProvider(t *testing.T, seed string) (softtee.Provider, *registry.Registry, measure.Measurement) {
	t.Helper()
	platform, err := softtee.NewPlatform([]byte(seed))
	if err != nil {
		t.Fatal(err)
	}
	var golden measure.Measurement
	copy(golden[:], seed)
	reg := registry.New(1)
	reg.AddVoter("op")
	if err := reg.Propose(golden, seed); err != nil {
		t.Fatal(err)
	}
	if err := reg.Vote("op", golden); err != nil {
		t.Fatal(err)
	}
	verifier := softtee.NewVerifier(platform.PublicKey(), reg)
	return softtee.NewProvider(platform.Launch(golden), verifier), reg, golden
}

func idHandler(id string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, id)
	})
}

func serving(addr string) fleet.Endpoint {
	return fleet.Endpoint{ControlURL: "ctl-" + addr, UpstreamAddr: addr, State: fleet.StateServing}
}

// startGateway builds and starts a gateway over the view, returning a
// client that trusts whatever it serves.
func startGateway(t *testing.T, src Source, v attestation.Verifier) (*Gateway, *http.Client) {
	t.Helper()
	cert := selfSigned(t)
	g, err := New(Config{
		Source:         src,
		Verifier:       v,
		GetCertificate: func() (*tls.Certificate, error) { return &cert, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	client := &http.Client{
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{InsecureSkipVerify: true}, //nolint:gosec // test client
		},
		Timeout: 10 * time.Second,
	}
	t.Cleanup(client.CloseIdleConnections)
	return g, client
}

func get(t *testing.T, client *http.Client, url string) (string, int) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.StatusCode
}

// TestGatewayBalancesAcrossUpstreams: requests spread over every
// serving node; joining and draining endpoints receive nothing.
func TestGatewayBalancesAcrossUpstreams(t *testing.T) {
	provider, _, _ := softProvider(t, "balance")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	var eps []fleet.Endpoint
	ids := []string{"a", "b", "c"}
	for _, id := range ids {
		eps = append(eps, serving(startUpstream(t, provider, idHandler(id))))
	}
	// A joining node must receive no traffic even though it is listed.
	joinAddr := startUpstream(t, provider, idHandler("joining"))
	join := serving(joinAddr)
	join.State = fleet.StateJoining
	eps = append(eps, join)

	view := NewView(testDomain, eps...)
	g, client := startGateway(t, view, mux)

	seen := map[string]int{}
	for i := 0; i < 60; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		seen[body]++
	}
	for _, id := range ids {
		if seen[id] == 0 {
			t.Errorf("upstream %q received no traffic: %v", id, seen)
		}
	}
	if seen["joining"] != 0 {
		t.Errorf("joining endpoint received %d requests", seen["joining"])
	}
	if s := g.Stats(); s.Requests != 60 || len(s.Ejected) != 0 {
		t.Errorf("stats = %+v, want 60 requests, no ejections", s)
	}
}

// TestGatewayProviderRevocationIsolation: two providers behind one mux;
// revoking one provider's golden ejects only that provider's nodes, and
// clients never see a failure because requests retry onto the healthy
// provider's nodes.
func TestGatewayProviderRevocationIsolation(t *testing.T) {
	soft, softReg, softGolden := softProvider(t, "isolation")
	other := &testProvider{name: "test-tee"}
	mux := attestation.NewMux()
	mux.RegisterProvider(soft)
	mux.RegisterProvider(other)

	softAddr := startUpstream(t, soft, idHandler("soft"))
	otherAddr := startUpstream(t, other, idHandler("other"))
	view := NewView(testDomain, serving(softAddr), serving(otherAddr))
	g, client := startGateway(t, view, mux)

	// Healthy estate: both providers' nodes serve.
	seen := map[string]int{}
	for i := 0; i < 20; i++ {
		body, _ := get(t, client, "https://"+g.Addr()+"/")
		seen[body]++
	}
	if seen["soft"] == 0 || seen["other"] == 0 {
		t.Fatalf("expected both providers to serve, got %v", seen)
	}

	// Revoke the softtee golden. The policy bump flushes the gateway's
	// warm pools, so the very next handshake against the softtee node
	// fails closed and ejects it — while the other provider's node keeps
	// serving every request.
	if err := softReg.Revoke(softGolden); err != nil {
		t.Fatal(err)
	}
	soft.InvalidatePolicy()

	seen = map[string]int{}
	for i := 0; i < 20; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK {
			t.Fatalf("request %d after revocation: status %d", i, status)
		}
		seen[body]++
	}
	if seen["soft"] != 0 {
		t.Errorf("revoked provider's node still served %d requests", seen["soft"])
	}
	if seen["other"] != 20 {
		t.Errorf("healthy provider's node served %d/20", seen["other"])
	}
	s := g.Stats()
	if len(s.Ejected) != 1 || s.Ejected[0] != softAddr {
		t.Errorf("ejected = %v, want [%s]", s.Ejected, softAddr)
	}
	if s.PolicyFlushes == 0 {
		t.Error("policy revision bump did not flush the upstream pools")
	}

	// The revocation is per-provider: evidence from the other provider
	// still verifies through the mux.
	ev, err := other.Issue(context.Background(), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mux.VerifyEvidence(context.Background(), ev); err != nil {
		t.Errorf("healthy provider's evidence stopped verifying: %v", err)
	}
}

// TestGatewayRejectsUnattestedUpstream: a node serving a plain TLS
// certificate (no evidence) is never proxied to — fail closed, with the
// request retried onto an attested node.
func TestGatewayRejectsUnattestedUpstream(t *testing.T) {
	provider, _, _ := softProvider(t, "unattested")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	goodAddr := startUpstream(t, provider, idHandler("good"))
	badAddr := plainUpstream(t, idHandler("bad"))
	view := NewView(testDomain, serving(goodAddr), serving(badAddr))
	g, client := startGateway(t, view, mux)

	for i := 0; i < 10; i++ {
		body, status := get(t, client, "https://"+g.Addr()+"/")
		if status != http.StatusOK || body != "good" {
			t.Fatalf("request %d: status=%d body=%q", i, status, body)
		}
	}
	if s := g.Stats(); len(s.Ejected) != 1 || s.Ejected[0] != badAddr {
		t.Errorf("ejected = %v, want [%s]", s.Ejected, badAddr)
	}
}

// TestGatewayDrainZeroFailures: concurrent clients hammer the gateway
// while an endpoint leaves the view; View.Set's drain means no admitted
// request ever lands on a closed server, so the run is failure-free.
func TestGatewayDrainZeroFailures(t *testing.T) {
	provider, _, _ := softProvider(t, "drain")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)

	cert, err := ratls.CreateProviderCertificate(context.Background(), provider, testDomain)
	if err != nil {
		t.Fatal(err)
	}
	newUpstream := func(id string) (fleet.Endpoint, *http.Server) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: idHandler(id), ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = srv.Serve(tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}})) }()
		return serving(ln.Addr().String()), srv
	}
	epA, srvA := newUpstream("a")
	epB, srvB := newUpstream("b")
	defer func() { _ = srvA.Close() }()

	view := NewView(testDomain, epA, epB)
	g, client := startGateway(t, view, mux)

	var failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get("https://" + g.Addr() + "/")
				if err != nil {
					failures.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	// Drain B out of the view, then close its server — the Set call
	// returns only once every admitted request has released.
	view.Set(epA)
	_ = srvB.Close()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed requests through the gateway during drain", n)
	}
}

// TestGatewayNoUpstreams: an empty view answers 502 rather than
// hanging, and the error names the condition.
func TestGatewayNoUpstreams(t *testing.T) {
	provider, _, _ := softProvider(t, "empty")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)
	view := NewView(testDomain)
	g, client := startGateway(t, view, mux)
	body, status := get(t, client, "https://"+g.Addr()+"/")
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", status)
	}
	if !strings.Contains(body, ErrNoUpstreams.Error()) {
		t.Fatalf("body = %q, want it to name %q", body, ErrNoUpstreams.Error())
	}
}

// TestGatewayConfigValidation: missing pieces are refused up front.
func TestGatewayConfigValidation(t *testing.T) {
	provider, _, _ := softProvider(t, "cfg")
	mux := attestation.NewMux()
	mux.RegisterProvider(provider)
	if _, err := New(Config{Verifier: mux}); err == nil {
		t.Error("New without source succeeded")
	}
	if _, err := New(Config{Source: NewView(testDomain)}); err == nil {
		t.Error("New without verifier succeeded")
	}
	g, err := New(Config{Source: NewView(testDomain), Verifier: mux})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Start(); err == nil {
		t.Error("Start without GetCertificate succeeded")
	}
}
