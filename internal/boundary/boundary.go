// Package boundary implements the Internet Computer Boundary Node (§4.2):
// the protocol-translation proxy that turns ordinary HTTP requests into
// IC-protocol message exchanges, plus the JavaScript-like service worker
// it hands to browsers so that subsequent requests are translated — and
// response certificates verified — on the client side.
//
// A malicious Boundary Node can tamper with replies or serve a rigged
// service worker; both attack hooks exist here because they are exactly
// what Revelio's attestation of the BN is designed to expose.
package boundary

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"revelio/internal/ic"
)

// Paths the Boundary Node serves.
const (
	// QueryPathPrefix accepts POSTed query calls:
	// /api/v2/canister/{id}/query.
	QueryPathPrefix = "/api/v2/canister/"
	// ServiceWorkerPath serves the service worker payload.
	ServiceWorkerPath = "/sw.js"
)

// ErrTampered reports client-side detection of a Boundary Node that
// modified a certified response.
var ErrTampered = errors.New("boundary: certified response tampered")

// CallBody is the JSON body of a query/call POST.
type CallBody struct {
	Method string `json:"method"`
	Arg    []byte `json:"arg"`
}

// Proxy is the Boundary Node.
type Proxy struct {
	net *ic.Network
	// swVersion is baked into the service worker body; it is part of the
	// rootfs in a Revelio-protected BN and hence measured.
	swVersion string
	// assetCanister, when set, receives plain GETs translated to
	// "http_request" queries — how dapp frontends are served.
	assetCanister string

	tamperReplies atomic.Bool
	tamperWorker  atomic.Bool
}

var _ http.Handler = (*Proxy)(nil)

// NewProxy creates a Boundary Node in front of the IC network.
func NewProxy(network *ic.Network, swVersion string) *Proxy {
	return &Proxy{net: network, swVersion: swVersion}
}

// ServeAssetsFrom routes plain GET requests to the named canister's
// "http_request" query method (the asset-canister translation real BNs
// perform on the first, pre-service-worker request).
func (p *Proxy) ServeAssetsFrom(canisterID string) { p.assetCanister = canisterID }

// TamperReplies makes the (malicious) proxy modify canister replies
// in flight.
func (p *Proxy) TamperReplies(on bool) { p.tamperReplies.Store(on) }

// TamperServiceWorker makes the proxy serve a rigged service worker.
func (p *Proxy) TamperServiceWorker(on bool) { p.tamperWorker.Store(on) }

// ServiceWorkerBody returns the canonical worker payload for a version —
// what an honest BN serves and what the rootfs measurement covers.
func ServiceWorkerBody(version string) []byte {
	return []byte("// revelio-ic-service-worker\n// version: " + version +
		"\n// verifies subnet threshold certificates client-side\n")
}

// ServeHTTP implements the HTTP→IC translation.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == ServiceWorkerPath:
		p.serveWorker(w)
	case r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, QueryPathPrefix):
		p.serveCall(w, r)
	case r.Method == http.MethodGet && p.assetCanister != "":
		p.serveAsset(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveAsset translates GET {path} into an http_request query on the
// asset canister and relays the reply body. The direct translation path
// offers no client-side certificate verification — exactly the trust gap
// that motivates attesting the BN (§4.2).
func (p *Proxy) serveAsset(w http.ResponseWriter, r *http.Request) {
	resp, err := p.net.Submit(ic.Request{
		CanisterID: p.assetCanister,
		Method:     "http_request",
		Arg:        []byte(r.URL.Path),
		Kind:       ic.KindQuery,
	})
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, ic.ErrNoSuchCanister) || errors.Is(err, ic.ErrNoSuchMethod) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	body := resp.Reply
	if p.tamperReplies.Load() {
		body = append([]byte("tampered:"), body...)
	}
	_, _ = w.Write(body)
}

func (p *Proxy) serveWorker(w http.ResponseWriter) {
	body := ServiceWorkerBody(p.swVersion)
	if p.tamperWorker.Load() {
		body = append(body, []byte("// injected: exfiltrate(credentials)\n")...)
	}
	w.Header().Set("Content-Type", "application/javascript")
	_, _ = w.Write(body)
}

func (p *Proxy) serveCall(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, QueryPathPrefix)
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 {
		http.Error(w, "bad path", http.StatusBadRequest)
		return
	}
	canisterID, callKind := parts[0], parts[1]
	var kind ic.RequestKind
	switch callKind {
	case "query":
		kind = ic.KindQuery
	case "call":
		kind = ic.KindUpdate
	default:
		http.Error(w, "bad call kind", http.StatusBadRequest)
		return
	}
	var body CallBody
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}

	resp, err := p.net.Submit(ic.Request{
		CanisterID: canisterID,
		Method:     body.Method,
		Arg:        body.Arg,
		Kind:       kind,
	})
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, ic.ErrNoSuchCanister) || errors.Is(err, ic.ErrNoSuchMethod) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	if p.tamperReplies.Load() {
		// The malicious BN rewrites the reply but cannot forge subnet
		// signatures — verifying clients catch this.
		resp.Reply = append([]byte("tampered:"), resp.Reply...)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ServiceWorker is the client-side verifier a browser runs after
// installing the worker: it translates requests and verifies the subnet
// certificate on every response.
type ServiceWorker struct {
	keys map[string]ic.SubnetPublicKey
}

// NewServiceWorker creates a verifying worker holding the subnets' public
// key material (obtained out of band, e.g. from the NNS).
func NewServiceWorker(keys ...ic.SubnetPublicKey) *ServiceWorker {
	m := make(map[string]ic.SubnetPublicKey, len(keys))
	for _, k := range keys {
		m[k.SubnetID] = k
	}
	return &ServiceWorker{keys: m}
}

// Call posts a request through the Boundary Node at baseURL and verifies
// the certificate before returning the reply. ctx bounds the wire call.
func (sw *ServiceWorker) Call(ctx context.Context, client *http.Client, baseURL, canisterID string, kind ic.RequestKind, method string, arg []byte) ([]byte, error) {
	callKind := "query"
	if kind == ic.KindUpdate {
		callKind = "call"
	}
	body, err := json.Marshal(CallBody{Method: method, Arg: arg})
	if err != nil {
		return nil, err
	}
	url := baseURL + QueryPathPrefix + canisterID + "/" + callKind
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("boundary: post %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("boundary: status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var certified ic.CertifiedResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&certified); err != nil {
		return nil, fmt.Errorf("boundary: decode response: %w", err)
	}

	key, ok := sw.keys[certified.Cert.SubnetID]
	if !ok {
		return nil, fmt.Errorf("%w: unknown subnet %q", ErrTampered, certified.Cert.SubnetID)
	}
	if err := key.Verify(&certified); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrTampered, err)
	}
	return certified.Reply, nil
}
