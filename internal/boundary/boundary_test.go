package boundary

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"revelio/internal/ic"
)

func echoCanister() *ic.Canister {
	return ic.NewCanister("echo",
		map[string]ic.Handler{
			"greet": func(_ *ic.State, arg []byte) ([]byte, error) {
				return append([]byte("hello "), arg...), nil
			},
		},
		map[string]ic.Handler{
			"store": func(s *ic.State, arg []byte) ([]byte, error) {
				s.Set("value", arg)
				return []byte("ok"), nil
			},
		})
}

func newStack(t *testing.T) (*ic.Subnet, *Proxy, *httptest.Server) {
	t.Helper()
	subnet, err := ic.NewSubnet("subnet-app", 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	net := ic.NewNetwork()
	net.AddSubnet(subnet)
	if err := net.InstallCanister("subnet-app", echoCanister()); err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy(net, "1.2.3")
	server := httptest.NewServer(proxy)
	t.Cleanup(server.Close)
	return subnet, proxy, server
}

func TestQueryThroughProxy(t *testing.T) {
	subnet, _, server := newStack(t)
	sw := NewServiceWorker(subnet.PublicKey())
	reply, err := sw.Call(context.Background(), server.Client(), server.URL, "echo", ic.KindQuery, "greet", []byte("world"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "hello world" {
		t.Errorf("reply = %q", reply)
	}
}

func TestUpdateThroughProxy(t *testing.T) {
	subnet, _, server := newStack(t)
	sw := NewServiceWorker(subnet.PublicKey())
	reply, err := sw.Call(context.Background(), server.Client(), server.URL, "echo", ic.KindUpdate, "store", []byte("v"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "ok" {
		t.Errorf("reply = %q", reply)
	}
}

// TestMaliciousProxyDetected is the §4.2 threat: a Boundary Node that
// rewrites canister replies is caught by the verifying service worker
// because it cannot forge the subnet's threshold certificate.
func TestMaliciousProxyDetected(t *testing.T) {
	subnet, proxy, server := newStack(t)
	proxy.TamperReplies(true)
	sw := NewServiceWorker(subnet.PublicKey())
	_, err := sw.Call(context.Background(), server.Client(), server.URL, "echo", ic.KindQuery, "greet", []byte("x"))
	if !errors.Is(err, ErrTampered) {
		t.Errorf("err = %v, want ErrTampered", err)
	}
}

// A non-verifying client (plain browser without the honest service
// worker) would accept the tampered reply — demonstrating why attesting
// the BN matters for users who rely on the BN-served worker.
func TestPlainClientAcceptsTamperedReply(t *testing.T) {
	_, proxy, server := newStack(t)
	proxy.TamperReplies(true)
	resp, err := http.Post(server.URL+QueryPathPrefix+"echo/query", "application/json",
		bytes.NewReader([]byte(`{"method":"greet","arg":null}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var certified ic.CertifiedResponse
	if err := json.NewDecoder(resp.Body).Decode(&certified); err != nil {
		t.Fatal(err)
	}
	// The plain client happily takes the tampered reply at face value.
	if !bytes.HasPrefix(certified.Reply, []byte("tampered:")) {
		t.Errorf("proxy did not tamper (test setup broken): %q", certified.Reply)
	}
}

func TestServiceWorkerContent(t *testing.T) {
	_, proxy, server := newStack(t)
	resp, err := http.Get(server.URL + ServiceWorkerPath)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, ServiceWorkerBody("1.2.3")) {
		t.Error("served worker differs from canonical body")
	}

	// A malicious BN serves a rigged worker — its bytes differ from the
	// canonical (measured) body, so an auditor comparing against the
	// rootfs-measured version catches it.
	proxy.TamperServiceWorker(true)
	resp2, err := http.Get(server.URL + ServiceWorkerPath)
	if err != nil {
		t.Fatal(err)
	}
	body2, err := io.ReadAll(resp2.Body)
	_ = resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(body2, ServiceWorkerBody("1.2.3")) {
		t.Error("tampered worker identical to canonical body")
	}
}

func TestProxyErrorMapping(t *testing.T) {
	_, _, server := newStack(t)
	cases := []struct {
		path string
		body string
		want int
	}{
		{QueryPathPrefix + "missing/query", `{"method":"greet"}`, http.StatusNotFound},
		{QueryPathPrefix + "echo/query", `{"method":"missing"}`, http.StatusNotFound},
		{QueryPathPrefix + "echo/badkind", `{"method":"greet"}`, http.StatusBadRequest},
		{QueryPathPrefix + "echo/query", `not json`, http.StatusBadRequest},
		{QueryPathPrefix + "echo", `{}`, http.StatusBadRequest},
	}
	for _, tt := range cases {
		resp, err := http.Post(server.URL+tt.path, "application/json",
			bytes.NewReader([]byte(tt.body)))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != tt.want {
			t.Errorf("POST %s %q: status %d, want %d", tt.path, tt.body, resp.StatusCode, tt.want)
		}
	}
	resp, err := http.Get(server.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /other: status %d", resp.StatusCode)
	}
}

func TestServiceWorkerUnknownSubnet(t *testing.T) {
	_, _, server := newStack(t)
	sw := NewServiceWorker() // holds no subnet keys
	_, err := sw.Call(context.Background(), server.Client(), server.URL, "echo", ic.KindQuery, "greet", nil)
	if !errors.Is(err, ErrTampered) {
		t.Errorf("err = %v, want ErrTampered", err)
	}
}

func TestAssetCanisterGETTranslation(t *testing.T) {
	subnet, err := ic.NewSubnet("subnet-assets", 4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	network := ic.NewNetwork()
	network.AddSubnet(subnet)
	assets := ic.NewCanister("frontend",
		map[string]ic.Handler{
			"http_request": func(_ *ic.State, arg []byte) ([]byte, error) {
				switch string(arg) {
				case "/", "/index.html":
					return []byte("<html>dapp</html>"), nil
				default:
					return nil, errors.New("404")
				}
			},
		}, nil)
	if err := network.InstallCanister("subnet-assets", assets); err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy(network, "1.0")
	proxy.ServeAssetsFrom("frontend")
	server := httptest.NewServer(proxy)
	t.Cleanup(server.Close)

	resp, err := http.Get(server.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "<html>dapp</html>" {
		t.Errorf("body = %q", body)
	}

	// Unknown assets surface as gateway errors, not panics.
	resp2, err := http.Get(server.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Errorf("missing asset: status %d", resp2.StatusCode)
	}

	// The direct GET path has no client-side certificate check: a
	// tampering BN succeeds silently here (which is the point of
	// attesting it).
	proxy.TamperReplies(true)
	resp3, err := http.Get(server.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	body3, err := io.ReadAll(resp3.Body)
	_ = resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(body3, []byte("tampered:")) {
		t.Error("test setup: proxy did not tamper")
	}
}

// Without an asset canister configured, plain GETs 404 as before.
func TestNoAssetCanisterConfigured(t *testing.T) {
	_, _, server := newStack(t)
	resp, err := http.Get(server.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}
