// Package firmware models the guest's virtual firmware (OVMF) with the
// measured-direct-boot patches the paper builds on (§2.1.2, Fig 1).
//
// The firmware binary reserves space for a hash table covering the kernel,
// the initrd and the kernel command line. The (untrusted) hypervisor fills
// that table before launch; because the table lives inside the firmware
// volume, it is included in the AMD-SP's launch measurement. At boot the
// firmware re-hashes each blob it receives over fw_cfg and refuses to boot
// on any mismatch. The combination makes the injected hashes verifiable by
// any remote attester: a hypervisor can lie, but not undetectably.
package firmware

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
)

// HashSize is the digest size used in the hash table.
const HashSize = sha256.Size

var (
	// ErrHashMismatch is the boot failure raised when a delivered blob
	// does not match the measured hash table.
	ErrHashMismatch = errors.New("firmware: boot blob does not match measured hash table")
	// ErrNoHashTable reports a genuine firmware launched without a table.
	ErrNoHashTable = errors.New("firmware: hash table not populated")
)

// HashTable is the table QEMU injects into the firmware volume: one
// SHA-256 digest per direct-boot component.
type HashTable struct {
	Kernel  [HashSize]byte
	Initrd  [HashSize]byte
	Cmdline [HashSize]byte
	filled  bool
}

// NewHashTable computes the table for a concrete set of boot blobs.
func NewHashTable(kernel, initrd []byte, cmdline string) HashTable {
	return HashTable{
		Kernel:  sha256.Sum256(kernel),
		Initrd:  sha256.Sum256(initrd),
		Cmdline: sha256.Sum256([]byte(cmdline)),
		filled:  true,
	}
}

// Filled reports whether the table has been populated.
func (t HashTable) Filled() bool { return t.filled }

// Bytes serializes the table region of the firmware volume.
func (t HashTable) Bytes() []byte {
	out := make([]byte, 0, 3*HashSize+1)
	if t.filled {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, t.Kernel[:]...)
	out = append(out, t.Initrd[:]...)
	out = append(out, t.Cmdline[:]...)
	return out
}

// Firmware is a firmware build. Two builds differ in their measured bytes
// if and only if their code or behaviour differs — a malicious build that
// skips verification necessarily measures differently, which is the
// §6.1.1 defence.
type Firmware struct {
	code     []byte
	verifies bool
}

// NewOVMF returns a genuine measured-direct-boot firmware build. The
// version string is folded into the code bytes, so firmware upgrades
// change the measurement.
func NewOVMF(version string) *Firmware {
	return &Firmware{
		code:     []byte("OVMF-MDB/verify=on/" + version),
		verifies: true,
	}
}

// NewMaliciousOVMF returns a firmware build that skips hash verification.
// Its code bytes necessarily differ from every genuine build, so the
// launch measurement exposes it.
func NewMaliciousOVMF(version string) *Firmware {
	return &Firmware{
		code:     []byte("OVMF-MDB/verify=off/" + version),
		verifies: false,
	}
}

// MeasuredBytes returns the full firmware volume as measured by the
// AMD-SP: the code region followed by the hash-table region (Fig 1 (ii)).
func (f *Firmware) MeasuredBytes(table HashTable) []byte {
	out := make([]byte, 0, len(f.code)+3*HashSize+1)
	out = append(out, f.code...)
	out = append(out, table.Bytes()...)
	return out
}

// VerifyBoot is the firmware's boot-time check: hash every blob received
// over fw_cfg and compare against the measured table. A genuine build
// fails the boot on mismatch; a malicious build skips the check (and is
// caught by its measurement instead).
func (f *Firmware) VerifyBoot(table HashTable, kernel, initrd []byte, cmdline string) error {
	if !f.verifies {
		return nil
	}
	if !table.Filled() {
		return ErrNoHashTable
	}
	got := NewHashTable(kernel, initrd, cmdline)
	switch {
	case !bytes.Equal(got.Kernel[:], table.Kernel[:]):
		return fmt.Errorf("%w: kernel", ErrHashMismatch)
	case !bytes.Equal(got.Initrd[:], table.Initrd[:]):
		return fmt.Errorf("%w: initrd", ErrHashMismatch)
	case !bytes.Equal(got.Cmdline[:], table.Cmdline[:]):
		return fmt.Errorf("%w: cmdline", ErrHashMismatch)
	}
	return nil
}
