package firmware

import (
	"bytes"
	"errors"
	"testing"
)

var (
	kernel  = []byte("vmlinuz-5.17-snp")
	initrd  = []byte("initrd-with-verity-setup")
	cmdline = "root=/dev/dm-0 verity_root_hash=abc123"
)

func TestVerifyBootHappyPath(t *testing.T) {
	fw := NewOVMF("2023.05")
	table := NewHashTable(kernel, initrd, cmdline)
	if err := fw.VerifyBoot(table, kernel, initrd, cmdline); err != nil {
		t.Errorf("VerifyBoot: %v", err)
	}
}

func TestVerifyBootDetectsEachComponent(t *testing.T) {
	fw := NewOVMF("2023.05")
	table := NewHashTable(kernel, initrd, cmdline)
	tests := []struct {
		name    string
		kernel  []byte
		initrd  []byte
		cmdline string
	}{
		{"kernel swapped", []byte("evil-kernel"), initrd, cmdline},
		{"initrd swapped", kernel, []byte("evil-initrd"), cmdline},
		{"cmdline edited", kernel, initrd, cmdline + " verity=off"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := fw.VerifyBoot(table, tt.kernel, tt.initrd, tt.cmdline)
			if !errors.Is(err, ErrHashMismatch) {
				t.Errorf("err = %v, want ErrHashMismatch", err)
			}
		})
	}
}

func TestVerifyBootEmptyTable(t *testing.T) {
	fw := NewOVMF("2023.05")
	if err := fw.VerifyBoot(HashTable{}, kernel, initrd, cmdline); !errors.Is(err, ErrNoHashTable) {
		t.Errorf("err = %v, want ErrNoHashTable", err)
	}
}

func TestMaliciousFirmwareSkipsChecksButMeasuresDifferently(t *testing.T) {
	good := NewOVMF("2023.05")
	evil := NewMaliciousOVMF("2023.05")
	table := NewHashTable(kernel, initrd, cmdline)

	// The malicious build happily boots wrong blobs...
	if err := evil.VerifyBoot(table, []byte("evil"), initrd, cmdline); err != nil {
		t.Errorf("malicious firmware rejected blobs: %v", err)
	}
	// ...but cannot fake the genuine build's measured bytes.
	if bytes.Equal(good.MeasuredBytes(table), evil.MeasuredBytes(table)) {
		t.Error("malicious firmware has identical measured bytes")
	}
}

func TestMeasuredBytesCoverTable(t *testing.T) {
	fw := NewOVMF("2023.05")
	t1 := NewHashTable(kernel, initrd, cmdline)
	t2 := NewHashTable(kernel, initrd, cmdline+" extra")
	if bytes.Equal(fw.MeasuredBytes(t1), fw.MeasuredBytes(t2)) {
		t.Error("hash table contents not reflected in measured bytes")
	}
	if bytes.Equal(fw.MeasuredBytes(t1), fw.MeasuredBytes(HashTable{})) {
		t.Error("empty vs filled table measure identically")
	}
}

func TestFirmwareVersionChangesMeasuredBytes(t *testing.T) {
	table := NewHashTable(kernel, initrd, cmdline)
	a := NewOVMF("1.0").MeasuredBytes(table)
	b := NewOVMF("2.0").MeasuredBytes(table)
	if bytes.Equal(a, b) {
		t.Error("firmware version not reflected in measured bytes")
	}
}

func TestHashTableBytesDeterministic(t *testing.T) {
	t1 := NewHashTable(kernel, initrd, cmdline)
	t2 := NewHashTable(kernel, initrd, cmdline)
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Error("hash table serialization not deterministic")
	}
	if !t1.Filled() {
		t.Error("NewHashTable not marked filled")
	}
	if (HashTable{}).Filled() {
		t.Error("zero table marked filled")
	}
}
