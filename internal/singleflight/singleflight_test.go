package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestConcurrentCallsCollapse(t *testing.T) {
	var g Group[string, int]
	var execs atomic.Int64
	var startedOnce sync.Once
	started := make(chan struct{})
	release := make(chan struct{})

	fn := func() (int, error) {
		execs.Add(1)
		startedOnce.Do(func() { close(started) })
		<-release
		return 42, nil
	}

	// Leader first: once `started` closes, the call is registered and
	// blocked on `release`.
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	run := func() {
		defer wg.Done()
		v, err, shared := g.Do("key", fn)
		if err != nil || v != 42 {
			t.Errorf("Do: v=%d err=%v", v, err)
		}
		if shared {
			sharedCount.Add(1)
		}
	}
	wg.Add(1)
	go run()
	<-started

	// Followers join while the leader is still in flight.
	const followers = 31
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go run()
	}
	// Give the followers ample time to reach Do before releasing the
	// leader; a follower arriving later would execute fn itself, which
	// the execs assertion below would catch.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Errorf("fn executed %d times, want 1", n)
	}
	if sharedCount.Load() != followers {
		t.Errorf("shared for %d callers, want %d", sharedCount.Load(), followers)
	}
}

func TestSequentialCallsEachExecute(t *testing.T) {
	var g Group[string, int]
	var execs int
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("key", func() (int, error) {
			execs++
			return execs, nil
		})
		if err != nil || shared || v != i+1 {
			t.Errorf("call %d: v=%d err=%v shared=%v", i, v, err, shared)
		}
	}
	if execs != 3 {
		t.Errorf("execs = %d, want 3", execs)
	}
}

func TestErrorsAreSharedButNotCached(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	if _, err, _ := g.Do("key", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// A later call retries: the failure was not remembered.
	v, err, _ := g.Do("key", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("retry: v=%d err=%v", v, err)
	}
}

func TestPanicReleasesKey(t *testing.T) {
	var g Group[string, int]
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate to the leader")
			}
		}()
		_, _, _ = g.Do("key", func() (int, error) { panic("boom") })
	}()
	// The key must be released: a later call executes normally instead of
	// hanging on the wedged in-flight entry.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err, _ := g.Do("key", func() (int, error) { return 9, nil })
		if err != nil || v != 9 {
			t.Errorf("after panic: v=%d err=%v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after panic")
	}
}

func TestDistinctKeysDoNotCollapse(t *testing.T) {
	var g Group[int, int]
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _ = g.Do(i, func() (int, error) {
				execs.Add(1)
				return i, nil
			})
		}(i)
	}
	wg.Wait()
	if execs.Load() != 8 {
		t.Errorf("execs = %d, want 8", execs.Load())
	}
}
