// Package singleflight provides duplicate-call suppression: concurrent
// calls with the same key collapse into one execution whose result every
// caller shares. Revelio uses it on the attestation fast path so N
// verifiers racing on a cold cache issue one KDS round trip instead of N
// (the paper's Table 3 cold path costs 778.9 ms — paying it once per
// (chip, TCB) is the difference between a thundering herd and a single
// fetch).
//
// Unlike a cache, a Group holds results only while the call is in
// flight: once the leader returns, the key is forgotten, so failures are
// naturally retried by the next caller — negative results are never
// served twice.
package singleflight

import (
	"errors"
	"sync"
)

// ErrPanicked is returned to waiting callers when the leader's fn
// panicked: the panic propagates on the leader's goroutine, while
// followers fail cleanly and the key is released for retry.
var ErrPanicked = errors.New("singleflight: in-flight call panicked")

// call tracks one in-flight execution.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Group suppresses duplicate concurrent calls per key. The zero value is
// ready to use; a Group must not be copied after first use.
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*call[V]
}

// Do executes fn, ensuring at most one execution per key is in flight at
// a time. Concurrent callers with the same key wait for the leader and
// receive its result; shared reports whether this caller got a result
// produced by another goroutine. Once the leader returns, the key is
// released — sequential calls each execute fn.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(call[V])
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// Release the key and the waiters even if fn panics — otherwise the
	// key would be wedged forever. The panic itself propagates on this
	// goroutine; waiters see ErrPanicked (c.err is only overwritten once
	// fn returns normally).
	c.err = ErrPanicked
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}
