module revelio

go 1.22
