package revelio_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks checks every relative link and anchor in the
// repository's top-level markdown docs: linked files must exist and
// linked #fragments must match a heading in the target file (GitHub
// anchor rules). External http(s) links are out of scope — CI must not
// depend on the network.
func TestMarkdownLinks(t *testing.T) {
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found at the repository root")
	}
	// PAPERS.md and SNIPPETS.md are verbatim extractions of external
	// reference material (papers, exemplar repos); their dangling image
	// and cross-file links are artifacts of the extraction, not doc rot
	// this repository can fix. ISSUE.md is task-tracker input.
	skip := map[string]bool{"PAPERS.md": true, "SNIPPETS.md": true, "ISSUE.md": true}
	kept := files[:0]
	for _, f := range files {
		if !skip[f] {
			kept = append(kept, f)
		}
	}
	files = kept

	anchors := make(map[string]map[string]bool, len(files))
	links := make(map[string][]string, len(files))
	for _, f := range files {
		heads, targets, err := scanMarkdown(f)
		if err != nil {
			t.Fatal(err)
		}
		anchors[f] = heads
		links[f] = targets
	}

	for _, f := range files {
		for _, target := range links[f] {
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			pathPart, frag, _ := strings.Cut(target, "#")
			dest := f
			if pathPart != "" {
				dest = filepath.Join(filepath.Dir(f), pathPart)
				if _, err := os.Stat(dest); err != nil {
					t.Errorf("%s: broken link %q: %v", f, target, err)
					continue
				}
			}
			if frag == "" {
				continue
			}
			heads, ok := anchors[dest]
			if !ok {
				// Anchors are only checked in the markdown files this
				// test scanned; a fragment into anything else is opaque.
				if strings.HasSuffix(dest, ".md") {
					t.Errorf("%s: link %q targets an unscanned markdown file", f, target)
				}
				continue
			}
			if !heads[frag] {
				t.Errorf("%s: link %q: no heading in %s produces anchor %q", f, target, dest, frag)
			}
		}
	}
}

var (
	mdHeadingRE = regexp.MustCompile("^#{1,6}\\s+(.+?)\\s*$")
	mdLinkRE    = regexp.MustCompile(`\]\(([^)\s]+)\)`)
)

// scanMarkdown returns the file's heading anchors (GitHub slugs) and
// every markdown link target, skipping fenced code blocks.
func scanMarkdown(path string) (heads map[string]bool, targets []string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	heads = make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := mdHeadingRE.FindStringSubmatch(line); m != nil {
			slug := githubSlug(m[1])
			// GitHub de-duplicates repeated headings with -1, -2, ...;
			// register the base form for each (first wins is enough
			// for link checking).
			for i := 0; heads[slug]; i++ {
				slug = fmt.Sprintf("%s-%d", githubSlug(m[1]), i+1)
			}
			heads[slug] = true
		}
		for _, m := range mdLinkRE.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
	}
	return heads, targets, nil
}

// githubSlug reproduces GitHub's heading-to-anchor rule: lowercase,
// drop everything but letters, digits, spaces, and hyphens, then turn
// spaces into hyphens.
func githubSlug(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
