// Package gateway is the public face of Revelio's attested data plane:
// a TLS-terminating reverse proxy that load-balances across a fleet of
// attested nodes, dialing every upstream over RA-TLS so a node that
// stops proving its measured state is ejected from rotation.
//
// The usual wiring is one call on the facade — Service.ServeGateway —
// or, for a churning fleet, a gateway over the fleet's serving view:
//
//	f, err := revelio.NewFleet(ctx, revelio.FleetConfig{Nodes: 8})
//	gw, err := gateway.New(gateway.Config{
//		Source:         f,                      // subscribable serving view
//		Verifier:       f.Mux(),                // RA-TLS upstream trust
//		GetCertificate: f.ServingCertificate,   // downstream termination
//	})
//	err = gw.Start()
//	// browsers navigate to gw.Addr() and still see the attested origin
//
// Routing is context-aware: Config.Routing evaluates operator policy
// over each node's published attestation context (TCB version,
// provider, locality, launch measurement) per request. Hard rules pin
// route classes to constraints ("only TCB ≥ 8 serves /payments");
// traffic splits weight providers in mixed fleets; and during a staged
// firmware rollout, canary routing steers a configured fraction of
// traffic to nodes on the new measurement and rolls it back
// automatically — routing away from the canary and surfacing the event
// in Stats — when its failure rate crosses the threshold. The policy
// filter is tier 1 of the decision order; attestation ejection, the
// circuit breaker, and least-pending balancing with round-robin
// tie-breaking follow. Fleet churn drains through the gateway (zero
// failed requests), and a policy-revision bump flushes the upstream
// pools so revocations bite on the very next handshake.
//
// Degradation under failure and overload is governed by Config's
// Resilience knobs: per-upstream circuit breakers (with active attested
// health probes re-admitting recovered nodes), a fixed retry budget
// with jittered backoff, per-attempt deadlines carved from the request
// deadline (propagated via DeadlineHeader), and bounded-in-flight
// admission that sheds overload with 503 + Retry-After.
package gateway

import (
	"revelio/internal/fleet"
	igateway "revelio/internal/gateway"
)

type (
	// Gateway is the attested reverse proxy.
	Gateway = igateway.Gateway
	// Config describes a gateway (source, verifier, certificate).
	Config = igateway.Config
	// Source publishes the serving view a gateway routes over. Fleet
	// implements it; View adapts any other membership owner.
	Source = igateway.Source
	// Stats is a point-in-time picture of the data plane.
	Stats = igateway.Stats
	// Resilience tunes circuit breaking, retry budgets, deadline
	// propagation, and load shedding (zero value = all defaults).
	Resilience = igateway.Resilience
	// Routing configures the context-aware policy layer: hard rules,
	// provider splits, and canary routing (zero value = disabled).
	Routing = igateway.Routing
	// RouteRule pins a path class to TCB / provider / locality
	// constraints; all set constraints must hold.
	RouteRule = igateway.RouteRule
	// TrafficSplit weights one provider's share of steered traffic.
	TrafficSplit = igateway.TrafficSplit
	// CanaryConfig tunes measurement-based canary routing during a
	// staged rollout: steer Weight percent to the new measurement,
	// auto-rollback past MaxFailureRate over MinSamples attempts.
	CanaryConfig = igateway.CanaryConfig
	// View is a standalone publishable serving view with the same drain
	// semantics as the fleet engine's.
	View = igateway.View

	// Snapshot is one immutable version of a serving view.
	Snapshot = fleet.Snapshot
	// Endpoint is one node in a serving view.
	Endpoint = fleet.Endpoint
	// EndpointState is a node's serving-lifecycle position.
	EndpointState = fleet.EndpointState
)

// Endpoint lifecycle states.
const (
	StateJoining  = fleet.StateJoining
	StateServing  = fleet.StateServing
	StateDraining = fleet.StateDraining
)

const (
	// DeadlineHeader carries a request's remaining deadline budget in
	// integer milliseconds: clients set it to bound the proxied request;
	// the gateway rewrites it per attempt with that attempt's carved
	// budget.
	DeadlineHeader = igateway.DeadlineHeader
	// HealthPath is the node health endpoint active breaker probes hit
	// over RA-TLS.
	HealthPath = fleet.HealthPath
)

var (
	// ErrNoUpstreams reports a request with no healthy endpoint to
	// route to.
	ErrNoUpstreams = igateway.ErrNoUpstreams
	// ErrClosed reports use of a closed gateway.
	ErrClosed = igateway.ErrClosed
	// ErrNoPolicyUpstreams reports a request every serving endpoint was
	// excluded from by the routing policy (503, no Retry-After).
	ErrNoPolicyUpstreams = igateway.ErrNoPolicyUpstreams
)

// New builds a gateway over cfg; Start opens its TLS listener.
func New(cfg Config) (*Gateway, error) { return igateway.New(cfg) }

// NewView creates a publishable serving view (version 1) for sources
// other than a Fleet.
func NewView(domain string, eps ...Endpoint) *View { return igateway.NewView(domain, eps...) }
