package gateway_test

import (
	"fmt"

	"revelio/gateway"
)

// ExampleRouting builds the routing policy from OPERATIONS.md: a path
// class pinned to high-TCB SEV-SNP nodes, a zone-pinned class, a 3:1
// provider split, and canary routing for staged firmware rollouts. The
// policy plugs into gateway.Config.Routing (or Service.ServeGateway's
// config); its zero value routes exactly like the pre-policy gateway.
func ExampleRouting() {
	routing := gateway.Routing{
		// Hard rules: first PathPrefix match wins, and a request whose
		// matching rule leaves no serving endpoint is refused with 503
		// (gateway.ErrNoPolicyUpstreams) — never routed out of policy.
		Rules: []gateway.RouteRule{
			{
				Name:       "payments",
				PathPrefix: "/payments",
				MinTCB:     8,
				Providers:  []string{"sev-snp"},
			},
			{
				Name:       "eu-residency",
				PathPrefix: "/eu",
				Localities: []string{"eu-west"},
			},
		},
		// Soft preference: steer sev-snp and soft-tdx traffic 3:1,
		// falling back to the whole in-policy set when the preferred
		// provider has no healthy endpoint.
		Splits: []gateway.TrafficSplit{
			{Provider: "sev-snp", Weight: 3},
			{Provider: "soft-tdx", Weight: 1},
		},
		// During a StageFirmware rollout, steer 25% of eligible traffic
		// to nodes on the new golden measurement; roll back — hard, until
		// the rollout commits or aborts — at a 50% failure rate over at
		// least 20 canary requests.
		Canary: gateway.CanaryConfig{
			Weight:         25,
			MaxFailureRate: 0.5,
			MinSamples:     20,
		},
	}

	for _, r := range routing.Rules {
		fmt.Printf("rule %s: prefix %q\n", r.Name, r.PathPrefix)
	}
	fmt.Printf("canary weight: %d%%\n", routing.Canary.Weight)
	// Output:
	// rule payments: prefix "/payments"
	// rule eu-residency: prefix "/eu"
	// canary weight: 25%
}
