package revelio

import (
	"fmt"

	"revelio/internal/firmware"
	"revelio/internal/hypervisor"
	"revelio/internal/imagebuild"
)

// Profile selects one of the paper's service image profiles.
type Profile string

// The paper's two use-case profiles.
const (
	// ProfileCryptPad is the E2E-encrypted collaboration suite (§4.1).
	ProfileCryptPad Profile = "cryptpad"
	// ProfileBoundaryNode is the Internet Computer proxy (§4.2).
	ProfileBoundaryNode Profile = "boundary-node"
)

// DefaultFirmwareVersion is the OVMF build deployments boot unless
// overridden.
const DefaultFirmwareVersion = "2023.05"

// buildSpec carries the image-build parameters the options mutate.
type buildSpec struct {
	profile         Profile
	name            string
	version         string
	firmwareVersion string
}

// BuildOption customizes an image build.
type BuildOption func(*buildSpec)

// BuildName overrides the image name.
func BuildName(name string) BuildOption { return func(s *buildSpec) { s.name = name } }

// BuildVersion overrides the image version — bump it for a new release
// whose measurement supersedes the old one.
func BuildVersion(version string) BuildOption { return func(s *buildSpec) { s.version = version } }

// BuildFirmware selects the OVMF build the golden measurement is
// computed against (default DefaultFirmwareVersion).
func BuildFirmware(version string) BuildOption {
	return func(s *buildSpec) { s.firmwareVersion = version }
}

// ImageBuild is a completed reproducible build: the artifacts, their
// manifest, and the golden launch measurement an auditor publishes.
type ImageBuild struct {
	// Image holds the built artifacts (kernel, initrd, cmdline, disk).
	Image *BuiltImage
	// Golden is the launch measurement under the selected firmware.
	Golden Measurement
	// FirmwareVersion is the OVMF build Golden was computed against.
	FirmwareVersion string
}

// Manifest returns the content-addressed artifact manifest.
func (b *ImageBuild) Manifest() ImageManifest { return b.Image.Manifest }

// resolveSpec turns a profile + options into an imagebuild spec against
// a fresh base-image registry (hermetic: every build pulls the same
// pinned base).
func resolveSpec(profile Profile, opts ...BuildOption) (imagebuild.Spec, *imagebuild.Registry, string, error) {
	s := buildSpec{profile: profile, firmwareVersion: DefaultFirmwareVersion}
	for _, o := range opts {
		o(&s)
	}
	reg := imagebuild.NewRegistry()
	base := imagebuild.PublishUbuntuBase(reg)
	var spec imagebuild.Spec
	switch profile {
	case ProfileCryptPad:
		spec = imagebuild.CryptpadSpec(base)
	case ProfileBoundaryNode:
		spec = imagebuild.BoundaryNodeSpec(base)
	default:
		return imagebuild.Spec{}, nil, "", fmt.Errorf("revelio: unknown profile %q", profile)
	}
	if s.name != "" {
		spec.Name = s.name
	}
	if s.version != "" {
		spec.Version = s.version
	}
	return spec, reg, s.firmwareVersion, nil
}

// BuildImage runs the reproducible build for a profile and computes the
// golden launch measurement — what the service provider deploys and
// what an independent auditor reruns from the published sources to
// verify bit-identical output (the F5 reproducibility property: equal
// Golden and Manifest values prove an identical image).
func BuildImage(profile Profile, opts ...BuildOption) (*ImageBuild, error) {
	spec, reg, fwVersion, err := resolveSpec(profile, opts...)
	if err != nil {
		return nil, err
	}
	img, err := imagebuild.NewBuilder(reg).Build(spec)
	if err != nil {
		return nil, err
	}
	golden, err := hypervisor.ExpectedMeasurement(firmware.NewOVMF(fwVersion), hypervisor.BootBlobs{
		Kernel: img.Kernel, Initrd: img.Initrd, Cmdline: img.Cmdline,
	})
	if err != nil {
		return nil, err
	}
	return &ImageBuild{Image: img, Golden: golden, FirmwareVersion: fwVersion}, nil
}
