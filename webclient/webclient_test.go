package webclient_test

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"revelio"
	"revelio/webclient"
)

// TestAttestedNavigation drives the public end-user flow against a live
// service: discovery, registration, attested navigation, and the
// measurement-mismatch failure mode.
func TestAttestedNavigation(t *testing.T) {
	ctx := context.Background()
	svc, err := revelio.New(ctx, revelio.WithDomain("webclient.test.example.org"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if _, err := svc.Provision(ctx); err != nil {
		t.Fatal(err)
	}
	if err := svc.ServeWeb(func(*revelio.Node) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("attested body"))
		})
	}); err != nil {
		t.Fatal(err)
	}

	b := webclient.NewBrowser(svc.CARootPool(), 0)
	b.Resolve(svc.Domain(), svc.WebAddr(0))
	ext := webclient.NewExtension(b, svc.Verifier())

	discovered, err := ext.Discover(ctx, svc.Domain())
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if discovered != svc.Golden() {
		t.Errorf("discovered measurement %s != golden", discovered)
	}

	ext.RegisterSite(svc.Domain(), svc.Golden())
	resp, metrics, err := ext.Navigate(ctx, svc.Domain(), "/")
	if err != nil {
		t.Fatalf("Navigate: %v", err)
	}
	if string(resp.Body) != "attested body" || !metrics.Attested {
		t.Errorf("resp=%q attested=%v", resp.Body, metrics.Attested)
	}

	wrongExt := webclient.NewExtension(b, svc.Verifier())
	var wrong revelio.Measurement
	wrong[0] = 0xBB
	wrongExt.RegisterSite(svc.Domain(), wrong)
	if _, _, err := wrongExt.Navigate(ctx, svc.Domain(), "/"); !errors.Is(err, webclient.ErrMeasurementMismatch) {
		t.Errorf("wrong golden: %v, want ErrMeasurementMismatch", err)
	}
}

// TestAttestedNavigationThroughGateway: the browser navigates to the
// service's gateway instead of a node and still gets the full attested
// verdict — the gateway terminates TLS with the shared attested key, so
// the extension's connection pinning and the proxied attestation bundle
// agree. Scale-out and node removal behind the gateway stay invisible.
func TestAttestedNavigationThroughGateway(t *testing.T) {
	ctx := context.Background()
	svc, err := revelio.New(ctx,
		revelio.WithDomain("gateway.webclient.test.example.org"),
		revelio.WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if _, err := svc.Provision(ctx); err != nil {
		t.Fatal(err)
	}
	if err := svc.ServeWeb(func(*revelio.Node) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("balanced body"))
		})
	}); err != nil {
		t.Fatal(err)
	}
	gw, err := svc.ServeGateway(ctx)
	if err != nil {
		t.Fatal(err)
	}

	b := webclient.NewBrowser(svc.CARootPool(), 0)
	b.Resolve(svc.Domain(), gw.Addr())
	ext := webclient.NewExtension(b, svc.Verifier())
	ext.RegisterSite(svc.Domain(), svc.Golden())

	resp, metrics, err := ext.Navigate(ctx, svc.Domain(), "/")
	if err != nil {
		t.Fatalf("Navigate through gateway: %v", err)
	}
	if string(resp.Body) != "balanced body" || !metrics.Attested {
		t.Errorf("resp=%q attested=%v", resp.Body, metrics.Attested)
	}

	// Churn behind the gateway: scale out, drop the original node, and
	// keep navigating — the attested-origin verdict must survive both.
	if _, err := svc.AddNode(ctx); err != nil {
		t.Fatal(err)
	}
	if err := svc.RemoveNode(ctx, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		resp, _, err := ext.Navigate(ctx, svc.Domain(), "/")
		if err != nil {
			t.Fatalf("Navigate %d after churn: %v", i, err)
		}
		if string(resp.Body) != "balanced body" {
			t.Errorf("navigation %d body = %q", i, resp.Body)
		}
	}
	if stats := gw.Stats(); stats.Requests == 0 || len(stats.Ejected) != 0 {
		t.Errorf("gateway stats = %+v", stats)
	}
}
