package webclient_test

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"revelio"
	"revelio/webclient"
)

// TestAttestedNavigation drives the public end-user flow against a live
// service: discovery, registration, attested navigation, and the
// measurement-mismatch failure mode.
func TestAttestedNavigation(t *testing.T) {
	ctx := context.Background()
	svc, err := revelio.New(ctx, revelio.WithDomain("webclient.test.example.org"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if _, err := svc.Provision(ctx); err != nil {
		t.Fatal(err)
	}
	if err := svc.ServeWeb(func(*revelio.Node) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("attested body"))
		})
	}); err != nil {
		t.Fatal(err)
	}

	b := webclient.NewBrowser(svc.CARootPool(), 0)
	b.Resolve(svc.Domain(), svc.WebAddr(0))
	ext := webclient.NewExtension(b, svc.Verifier())

	discovered, err := ext.Discover(ctx, svc.Domain())
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if discovered != svc.Golden() {
		t.Errorf("discovered measurement %s != golden", discovered)
	}

	ext.RegisterSite(svc.Domain(), svc.Golden())
	resp, metrics, err := ext.Navigate(ctx, svc.Domain(), "/")
	if err != nil {
		t.Fatalf("Navigate: %v", err)
	}
	if string(resp.Body) != "attested body" || !metrics.Attested {
		t.Errorf("resp=%q attested=%v", resp.Body, metrics.Attested)
	}

	wrongExt := webclient.NewExtension(b, svc.Verifier())
	var wrong revelio.Measurement
	wrong[0] = 0xBB
	wrongExt.RegisterSite(svc.Domain(), wrong)
	if _, _, err := wrongExt.Navigate(ctx, svc.Domain(), "/"); !errors.Is(err, webclient.ErrMeasurementMismatch) {
		t.Errorf("wrong golden: %v, want ErrMeasurementMismatch", err)
	}
}
