// Package webclient is the end-user side of the public SDK: the
// simulated browser and the Revelio web extension (paper §5.3.2) under
// public names. A Browser resolves domains and speaks HTTPS against a
// deployment's CA roots; an Extension layers remote attestation over
// every navigation — fresh-session attestation, per-request connection
// monitoring, and the two failure modes users are protected from
// (measurement mismatch, connection hijack).
package webclient

import (
	"crypto/x509"
	"time"

	"revelio/attestation/snp"
	"revelio/internal/browser"
	"revelio/internal/webext"
)

// Browser is a minimal browser: local DNS overrides, a CA root pool,
// and per-connection key introspection for the extension.
type Browser = browser.Browser

// Response is one fetched page.
type Response = browser.Response

// Extension is the Revelio web extension attached to a Browser.
type Extension = webext.Extension

// Metrics decomposes one navigation (attestation time, connection
// validation).
type Metrics = webext.Metrics

// The extension's user-facing failure modes. Where a failure has a
// class in the revelio/attestation taxonomy, the sentinel wraps it, so
// errors.Is works against both vocabularies: ErrMeasurementMismatch is
// an attestation.ErrUntrustedMeasurement (and hence ErrPolicyRejected),
// ErrConnectionHijacked an attestation.ErrBindingMismatch, and an
// ErrAttestationFailed carries the verifier's taxonomy error wrapped
// (ErrRevoked, ErrKDSUnavailable, ErrEvidenceExpired, ...).
var (
	// ErrSiteNotRegistered reports navigation to an unregistered site.
	ErrSiteNotRegistered = webext.ErrSiteNotRegistered
	// ErrAttestationFailed reports a site whose evidence failed
	// verification.
	ErrAttestationFailed = webext.ErrAttestationFailed
	// ErrMeasurementMismatch reports a site running software other than
	// the golden value the user registered.
	ErrMeasurementMismatch = webext.ErrMeasurementMismatch
	// ErrConnectionHijacked reports a TLS connection that no longer
	// terminates in the attested VM (e.g. after a DNS redirect).
	ErrConnectionHijacked = webext.ErrConnectionHijacked
	// ErrNoAttestation reports a site without an attestation endpoint.
	ErrNoAttestation = webext.ErrNoAttestation
)

// NewBrowser creates a browser trusting roots, with rtt of simulated
// network latency per request.
func NewBrowser(roots *x509.CertPool, rtt time.Duration) *Browser {
	return browser.New(roots, rtt)
}

// NewExtension attaches a Revelio extension to a browser, verifying
// site evidence through the given SEV-SNP verifier (obtain one from
// Service.Verifier or snp.NewVerifier). The extension is tied to the
// SEV-SNP provider because the sites' well-known attestation endpoint
// speaks the SEV report-bundle format; when that endpoint grows the
// provider-neutral envelope, this surface will accept an
// attestation.Verifier.
func NewExtension(b *Browser, verifier *snp.Verifier) *Extension {
	return webext.New(b, verifier)
}
