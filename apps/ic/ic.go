// Package ic is the public face of the simulated Internet Computer the
// Boundary Node use case proxies: subnets of replicas executing
// canisters and threshold-certifying every response.
package ic

import (
	"io"

	"revelio/internal/ic"
)

type (
	// Canister is a deployable unit of query/update handlers.
	Canister = ic.Canister
	// Handler is one canister method.
	Handler = ic.Handler
	// State is a canister's replicated key-value state.
	State = ic.State
	// Subnet is a replica group with a threshold signing key.
	Subnet = ic.Subnet
	// SubnetPublicKey verifies a subnet's certified responses.
	SubnetPublicKey = ic.SubnetPublicKey
	// Network routes requests to the subnet hosting a canister.
	Network = ic.Network
	// RequestKind distinguishes queries from updates.
	RequestKind = ic.RequestKind
	// CertifiedResponse is a reply plus its threshold certificate.
	CertifiedResponse = ic.CertifiedResponse
)

// Request kinds.
const (
	KindQuery  = ic.KindQuery
	KindUpdate = ic.KindUpdate
)

var (
	// ErrNoSuchCanister reports a call to an unknown canister.
	ErrNoSuchCanister = ic.ErrNoSuchCanister
	// ErrNoSuchMethod reports a call to an unknown method.
	ErrNoSuchMethod = ic.ErrNoSuchMethod
	// ErrNoQuorum reports a subnet that cannot certify (too many
	// corrupt replicas).
	ErrNoQuorum = ic.ErrNoQuorum
	// ErrBadCertificate reports a certificate that fails verification.
	ErrBadCertificate = ic.ErrBadCertificate
)

// NewCanister builds a canister from query and update handlers.
func NewCanister(id string, queries, updates map[string]Handler) *Canister {
	return ic.NewCanister(id, queries, updates)
}

// NewSubnet creates an n-replica subnet (rng seeds the threshold keys
// deterministically).
func NewSubnet(id string, n int, rng io.Reader) (*Subnet, error) { return ic.NewSubnet(id, n, rng) }

// NewNetwork creates an empty IC network.
func NewNetwork() *Network { return ic.NewNetwork() }
