// Package cryptpad is the public face of the paper's §4.1 use case: an
// end-to-end-encrypted collaboration pad whose server runs inside a
// Revelio-protected confidential VM. The server only ever stores
// ciphertext; Revelio attestation lets clients verify the exact server
// software, and tampering with stored blobs is detected client-side.
package cryptpad

import "revelio/internal/cryptpad"

type (
	// Server is the pad store that runs inside the confidential VM (an
	// http.Handler; hand it to Service.ServeWeb).
	Server = cryptpad.Server
	// Pad is one encrypted pad: ID plus client-held key material.
	Pad = cryptpad.Pad
)

var (
	// ErrNoSuchPad reports a GET for an unknown pad.
	ErrNoSuchPad = cryptpad.ErrNoSuchPad
	// ErrVersionConflict reports a PUT against a stale version.
	ErrVersionConflict = cryptpad.ErrVersionConflict
	// ErrBadShareLink reports an unparseable share link.
	ErrBadShareLink = cryptpad.ErrBadShareLink
	// ErrDecrypt reports pad content that fails authenticated decryption.
	ErrDecrypt = cryptpad.ErrDecrypt
)

// NewServer creates an empty pad server.
func NewServer() *Server { return cryptpad.NewServer() }

// NewPad mints a pad with fresh key material.
func NewPad() (*Pad, error) { return cryptpad.NewPad() }

// ParseShareLink reconstructs a pad from a share link (the key rides in
// the URL fragment and never reaches the server).
func ParseShareLink(link string) (*Pad, error) { return cryptpad.ParseShareLink(link) }
