// Package boundary is the public face of the paper's §4.2 use case: a
// Boundary Node — the protocol-translation proxy that gives browsers
// access to the Internet Computer — protected by Revelio. The verifying
// service worker checks subnet threshold certificates on every
// response, so even a malicious proxy cannot rewrite canister replies
// undetected.
package boundary

import (
	"revelio/apps/ic"
	"revelio/internal/boundary"
)

type (
	// Proxy is the Boundary Node (an http.Handler; hand it to
	// Service.ServeWeb).
	Proxy = boundary.Proxy
	// ServiceWorker verifies certified canister responses client-side.
	ServiceWorker = boundary.ServiceWorker
)

// ErrTampered reports a certified response that failed verification.
var ErrTampered = boundary.ErrTampered

// NewProxy creates a Boundary Node in front of an IC network.
func NewProxy(network *ic.Network, swVersion string) *Proxy {
	return boundary.NewProxy(network, swVersion)
}

// NewServiceWorker creates a verifying service worker trusting the
// given subnet keys.
func NewServiceWorker(keys ...ic.SubnetPublicKey) *ServiceWorker {
	return boundary.NewServiceWorker(keys...)
}
