package revelio

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/http"
	"sync"
	"time"

	"revelio/attestation"
	"revelio/attestation/snp"
	"revelio/internal/acme"
	"revelio/internal/certmgr"
	"revelio/internal/core"
	"revelio/internal/fleet"
	igateway "revelio/internal/gateway"
)

// Option configures a Service.
type Option func(*serviceConfig)

type serviceConfig struct {
	profile Profile
	build   []BuildOption
	domain  string
	nodes   int

	firmwareVersion string
	trust           *TrustRegistry
	remoteCA        bool
	persistSize     int64

	kdsRTT, spNetRTT, caRTT time.Duration
}

// WithProfile selects the service image profile (default
// ProfileCryptPad).
func WithProfile(p Profile) Option { return func(c *serviceConfig) { c.profile = p } }

// WithDomain sets the service's web domain (default
// "service.example.org").
func WithDomain(domain string) Option { return func(c *serviceConfig) { c.domain = domain } }

// WithNodes sets the number of confidential VMs (default 1).
func WithNodes(n int) Option { return func(c *serviceConfig) { c.nodes = n } }

// WithImage customizes the reproducible image build (name, version).
func WithImage(opts ...BuildOption) Option {
	return func(c *serviceConfig) { c.build = append(c.build, opts...) }
}

// WithFirmwareVersion selects the measured OVMF build (default
// DefaultFirmwareVersion).
func WithFirmwareVersion(v string) Option {
	return func(c *serviceConfig) { c.firmwareVersion = v }
}

// WithTrustRegistry judges measurements against a live trusted registry
// instead of the image's own golden value. Provisioning fails closed
// until the registry trusts the deployment's measurement — the §3.4.7
// delegated-audit flow.
func WithTrustRegistry(reg *TrustRegistry) Option {
	return func(c *serviceConfig) { c.trust = reg }
}

// WithRemoteCA runs the CA behind its HTTP wire protocol, as against a
// real Let's Encrypt (default: in-process calls).
func WithRemoteCA() Option { return func(c *serviceConfig) { c.remoteCA = true } }

// WithPersistSize overrides the sealed persistent-volume size.
func WithPersistSize(bytes int64) Option {
	return func(c *serviceConfig) { c.persistSize = bytes }
}

// WithNetworkLatency injects the paper's network conditions: kds on
// verifier-to-KDS fetches, spNet on SP-to-guest calls, ca on
// certificate issuance.
func WithNetworkLatency(kds, spNet, ca time.Duration) Option {
	return func(c *serviceConfig) { c.kdsRTT, c.spNetRTT, c.caRTT = kds, spNet, ca }
}

// Service is the SDK's front door: one attestable confidential-VM web
// service — image built from sources, nodes booted through measured
// direct boot, certificates provisioned with attestation, HTTPS served
// from inside the TEE — driven through a context-first lifecycle.
//
// The zero-dependency path is three calls:
//
//	svc, err := revelio.New(ctx, revelio.WithDomain("pad.example.org"))
//	report, err := svc.Provision(ctx)
//	err = svc.ServeWeb(app)
//
// Verification is provider-neutral: Verifier returns the SEV-SNP
// verifier, Mux the dispatching front that additional providers
// (attestation/softtee) register into.
type Service struct {
	d        *core.Deployment
	domain   string
	provider *snp.Provider
	mux      *attestation.Mux

	// opMu serializes lifecycle operations (Provision, ServeWeb,
	// AddNode, RemoveNode, RebootNode, SetFirmware): the deployment's
	// node slice is not safe for concurrent mutation, and interleaved
	// joins/removals would race on indices.
	opMu sync.Mutex

	mu          sync.Mutex
	provisioned bool
	leaderURL   string // standing leader's control URL (re-elected on removal)
	certDER     []byte // shared certificate handed to joining nodes
	webStarted  bool

	// view/gw carry the attested gateway once ServeGateway ran: view is
	// the service's published serving view (lifecycle ops republish it,
	// draining in-flight proxied requests first), gw the data plane.
	// certAgents is the stable per-publication agent list the gateway's
	// TLS handshakes resolve the serving credential from — handshake
	// goroutines must never walk d.Nodes, which lifecycle ops mutate.
	view       *igateway.View
	gw         *igateway.Gateway
	certAgents []*certmgr.Agent

	closeOnce sync.Once
}

// New builds the image, launches the nodes, and starts the control
// plane. The service is not yet provisioned (Provision) nor serving
// (ServeWeb). Cancelling ctx aborts construction; a partially built
// deployment is torn down before New returns.
func New(ctx context.Context, opts ...Option) (*Service, error) {
	cfg := serviceConfig{
		profile: ProfileCryptPad,
		domain:  "service.example.org",
		nodes:   1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("revelio: new service: %w", err)
	}
	build := cfg.build
	if cfg.firmwareVersion != "" {
		build = append(build, BuildFirmware(cfg.firmwareVersion))
	}
	spec, imgReg, fwVersion, err := resolveSpec(cfg.profile, build...)
	if err != nil {
		return nil, err
	}
	if cfg.persistSize > 0 {
		spec.PersistSize = cfg.persistSize
	}
	coreCfg := core.Config{
		Spec:            spec,
		Registry:        imgReg,
		FirmwareVersion: fwVersion,
		Nodes:           cfg.nodes,
		Domain:          cfg.domain,
		KDSRTT:          cfg.kdsRTT,
		SPNetRTT:        cfg.spNetRTT,
		CARTT:           cfg.caRTT,
		TrustRegistry:   cfg.trust,
		RemoteCA:        cfg.remoteCA,
	}
	d, err := core.New(coreCfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		d.Close()
		return nil, fmt.Errorf("revelio: new service: %w", err)
	}
	svc := &Service{d: d, domain: cfg.domain, provider: snp.NewProvider(d.Verifier), mux: attestation.NewMux()}
	svc.mux.RegisterProvider(svc.provider)
	return svc, nil
}

// Deployment exposes the underlying orchestration layer for operations
// the facade does not surface.
func (s *Service) Deployment() *Deployment { return s.d }

// Golden returns the deployment's current golden measurement — what the
// provider publishes and auditors verify by rebuilding from sources.
func (s *Service) Golden() Measurement { return s.d.Golden }

// Domain returns the service's web domain.
func (s *Service) Domain() string { return s.domain }

// Verifier returns the service's SEV-SNP verifier: the full
// verification pipeline with its fast-path caches, shared by the SP
// node, the agents and any web extension built over this deployment.
func (s *Service) Verifier() *snp.Verifier { return s.d.Verifier }

// CertSource returns the deployment's KDS-backed certificate source —
// what an independent relying party (an auditor's own verifier) plugs
// into snp.NewVerifier together with its own trust policy.
func (s *Service) CertSource() attestation.CertSource { return s.d.KDSClient }

// Provider returns the service's SEV-SNP attestation provider — the
// neutral face of Verifier.
func (s *Service) Provider() *snp.Provider { return s.provider }

// Mux returns the service's provider-neutral verification plane. The
// SEV-SNP provider is pre-registered; attach further providers to
// verify mixed-TEE estates through one object.
func (s *Service) Mux() *attestation.Mux { return s.mux }

// AttachProvider registers an additional attestation provider.
func (s *Service) AttachProvider(p attestation.Provider) { s.mux.RegisterProvider(p) }

// CARootPool returns the certificate pool browsers trust (the simulated
// Let's Encrypt root).
func (s *Service) CARootPool() *x509.CertPool { return s.d.CARootPool() }

// NumNodes returns the current node count.
func (s *Service) NumNodes() int { return len(s.d.Nodes) }

// Node returns node i.
func (s *Service) Node(i int) *Node { return s.d.Nodes[i] }

// WebAddr returns node i's HTTPS address (host:port), or "" before
// ServeWeb.
func (s *Service) WebAddr(i int) string { return s.d.Nodes[i].WebAddr() }

// Provision runs the SP node's certificate-management flow (Fig 4)
// across all nodes: attest every guest, obtain the shared certificate
// for the elected leader's CSR, and distribute it over mutually
// attested channels. Failures map onto the attestation taxonomy
// (errors.Is against attestation.Err*).
func (s *Service) Provision(ctx context.Context) (*ProvisionReport, error) {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	res, err := s.d.ProvisionCertificates(ctx)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.provisioned = true
	s.leaderURL = res.LeaderURL
	s.certDER = res.CertDER
	s.mu.Unlock()
	s.republishGateway(-1)
	return res, nil
}

// ServeWeb opens every node's HTTPS front end with the provisioned
// credentials. app builds the per-node application handler (nil serves
// only the well-known attestation endpoint); the attestation endpoint
// is always mounted.
func (s *Service) ServeWeb(app func(*Node) http.Handler) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if err := s.d.StartWeb(app); err != nil {
		return err
	}
	s.mu.Lock()
	s.webStarted = true
	s.mu.Unlock()
	return nil
}

// ServeGateway opens the service's attested gateway: a TLS-terminating
// reverse proxy over every serving node. Downstream it serves the
// provisioned shared certificate (resolved per handshake, so rotations
// propagate), which means a Revelio browser extension navigating to the
// gateway still sees the attested TLS key and still validates the
// attestation bundle — proxied from a real node — against it. Upstream,
// every connection is RA-TLS through the service's provider mux:
// fail-closed, with nodes that stop verifying ejected from rotation.
//
// The service must be provisioned and serving (Provision, ServeWeb)
// first. Lifecycle operations republish the gateway's serving view and
// drain in-flight proxied requests before touching a node, so AddNode
// and RemoveNode are invisible to gateway clients. ServeGateway is
// idempotent: subsequent calls return the running gateway.
func (s *Service) ServeGateway(ctx context.Context) (*Gateway, error) {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("revelio: serve gateway: %w", err)
	}
	s.mu.Lock()
	provisioned, webStarted, gw := s.provisioned, s.webStarted, s.gw
	s.mu.Unlock()
	if gw != nil {
		return gw, nil
	}
	if !provisioned || !webStarted {
		return nil, fmt.Errorf("revelio: serve gateway: service must be provisioned and serving first")
	}
	eps, agents := s.endpoints(-1)
	s.mu.Lock()
	s.certAgents = agents
	s.mu.Unlock()
	view := igateway.NewView(s.domain, eps...)
	gw, err := igateway.New(igateway.Config{
		Source:         view,
		Verifier:       s.mux,
		GetCertificate: s.servingCertificate,
	})
	if err != nil {
		return nil, err
	}
	if err := gw.Start(); err != nil {
		gw.Close()
		return nil, err
	}
	s.mu.Lock()
	s.view, s.gw = view, gw
	s.mu.Unlock()
	return gw, nil
}

// Gateway returns the running attested gateway, or nil before
// ServeGateway.
func (s *Service) Gateway() *Gateway {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gw
}

// servingCertificate resolves the shared serving credential from any
// provisioned node — the gateway's per-handshake certificate source.
// It reads the published agent list, not d.Nodes: handshakes race
// lifecycle operations, the node slice does not tolerate that.
func (s *Service) servingCertificate() (*tls.Certificate, error) {
	s.mu.Lock()
	agents := s.certAgents
	s.mu.Unlock()
	for _, a := range agents {
		if cert, err := a.ServingCertificate(); err == nil {
			return cert, nil
		}
	}
	return nil, fmt.Errorf("revelio: no provisioned node holds the serving certificate")
}

// endpoints renders the current node set as a serving view, skipping
// node index `exclude` (pass -1 to include everyone) and any node whose
// web tier is down. Callers hold opMu, which serializes every mutation
// of d.Nodes.
func (s *Service) endpoints(exclude int) ([]fleet.Endpoint, []*certmgr.Agent) {
	s.mu.Lock()
	leaderURL := s.leaderURL
	s.mu.Unlock()
	var eps []fleet.Endpoint
	var agents []*certmgr.Agent
	for i, n := range s.d.Nodes {
		if i == exclude || n.WebAddr() == "" {
			continue
		}
		eps = append(eps, fleet.NodeEndpoint(n, leaderURL, fleet.StateServing))
		agents = append(agents, n.Agent)
	}
	return eps, agents
}

// republishGateway refreshes the gateway's serving view after a
// lifecycle change. With exclude >= 0 the node at that index is dropped
// from the view first — Set returns only once every in-flight proxied
// request has drained, making it safe to close that node's servers.
func (s *Service) republishGateway(exclude int) {
	s.mu.Lock()
	view := s.view
	s.mu.Unlock()
	if view == nil {
		return
	}
	eps, agents := s.endpoints(exclude)
	s.mu.Lock()
	s.certAgents = agents
	s.mu.Unlock()
	view.Set(eps...)
}

// AddNode scales the service out by one node: launch, and — when the
// service is already provisioned — run the single-node join flow (the
// SP attests the newcomer, the standing leader hands it the shared key
// over mutual attestation) and open its web front end if the web tier
// is up. Returns the new node's index. On any failure, including a ctx
// cancellation mid-join, the node is removed again: joins are
// all-or-nothing.
//
// The facade keeps scale-out simple; for churn under live traffic with
// a drained serving view and zero failed requests, drive a Fleet
// (NewFleet) instead.
func (s *Service) AddNode(ctx context.Context) (int, error) {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.mu.Lock()
	provisioned, webStarted := s.provisioned, s.webStarted
	leaderURL, certDER := s.leaderURL, s.certDER
	s.mu.Unlock()
	idx, err := s.d.AddNode(ctx)
	if err != nil {
		return 0, err
	}
	if provisioned {
		node := s.d.Nodes[idx]
		if err := s.d.SP.ProvisionNode(ctx, node.ControlURL(), leaderURL, certDER); err != nil {
			_, _ = s.d.RemoveNode(context.Background(), idx)
			return 0, fmt.Errorf("revelio: provision joining node: %w", err)
		}
		if webStarted {
			if err := s.d.StartNodeWeb(idx); err != nil {
				_, _ = s.d.RemoveNode(context.Background(), idx)
				return 0, fmt.Errorf("revelio: start web on joining node: %w", err)
			}
		}
	}
	s.republishGateway(-1)
	return idx, nil
}

// RemoveNode decommissions node i (drain web, stop control plane, leave
// the SP's approved set). If node i holds the leader role, a surviving
// provisioned node is promoted first so later AddNode joins keep
// working; removing the last node of a provisioned service is refused
// for the same reason.
func (s *Service) RemoveNode(ctx context.Context, i int) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if i < 0 || i >= len(s.d.Nodes) {
		return fmt.Errorf("revelio: no node %d", i)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("revelio: remove node %d: %w", i, err)
	}
	s.mu.Lock()
	needElection := s.provisioned && s.d.Nodes[i].ControlURL() == s.leaderURL
	s.mu.Unlock()
	if needElection {
		promoted := ""
		for j, n := range s.d.Nodes {
			if j == i || !n.Agent.Ready() {
				continue
			}
			if err := n.Agent.BecomeLeader(); err != nil {
				return fmt.Errorf("revelio: promote node %d: %w", j, err)
			}
			promoted = n.ControlURL()
			break
		}
		if promoted == "" {
			return fmt.Errorf("revelio: cannot remove node %d: it is the only provisioned leader", i)
		}
		s.mu.Lock()
		s.leaderURL = promoted
		s.mu.Unlock()
	}
	// Past the election the removal runs to completion regardless of ctx
	// (a half-decommissioned node serves nobody). The gateway view drops
	// the node first and drains its in-flight proxied requests, so the
	// servers close with nothing talking to them.
	s.republishGateway(i)
	_, err := s.d.RemoveNode(context.Background(), i)
	s.republishGateway(-1)
	return err
}

// RebootNode power-cycles node i through measured direct boot; an
// unchanged measurement unseals the persistent volume and restores
// credentials without re-provisioning.
func (s *Service) RebootNode(ctx context.Context, i int) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if i >= 0 && i < len(s.d.Nodes) {
		// Drain the node out of the gateway view for the power cycle;
		// its listeners come back on fresh ports.
		s.republishGateway(i)
	}
	err := s.d.RebootNode(ctx, i)
	s.republishGateway(-1)
	return err
}

// SetFirmware switches the deployment to a different measured firmware
// build and returns the new golden measurement (see
// Deployment.SetFirmware for the trust hand-over contract).
func (s *Service) SetFirmware(ctx context.Context, version string) (Measurement, error) {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	return s.d.SetFirmware(ctx, version)
}

// ObtainCertificate runs a DNS-01 issuance against the deployment's CA
// for an arbitrary CSR — the capability anyone controlling the
// domain's DNS has against a public CA. Demos use it to play the
// attacker with a browser-valid certificate; Revelio's client-side
// attestation is what still catches them.
func (s *Service) ObtainCertificate(ctx context.Context, domain string, csrDER []byte) ([]byte, error) {
	return acme.NewClient(s.d.CA, s.d.Zone).ObtainCertificate(ctx, domain, csrDER)
}

// Close tears the service down — gateway first (stop admitting
// traffic), then the deployment. Idempotent and safe for concurrent use.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		gw := s.gw
		s.mu.Unlock()
		if gw != nil {
			gw.Close()
		}
		s.d.Close()
	})
}
