// Package revelio is a pure-Go reproduction of "Trustworthy confidential
// virtual machines for the masses" (MIDDLEWARE 2023): end-to-end
// attestable, SEV-SNP-protected web services, rebuilt on software
// substrates so the full system — hardware root of trust, measured direct
// boot, integrity-protected storage, certificate management, and
// browser-side attestation — runs on a laptop.
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory, examples/ for runnable entry points, and cmd/revelio-bench
// for the experiment harness that regenerates the paper's tables and
// figures.
package revelio
