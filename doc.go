// Package revelio is a pure-Go reproduction of "Trustworthy confidential
// virtual machines for the masses" (MIDDLEWARE 2023): end-to-end
// attestable, SEV-SNP-protected web services, rebuilt on software
// substrates so the full system — hardware root of trust, measured direct
// boot, integrity-protected storage, certificate management, and
// browser-side attestation — runs on a laptop.
//
// # The public SDK
//
// This package is the SDK's front door. The smallest end-to-end flow is
// three calls:
//
//	svc, err := revelio.New(ctx, revelio.WithDomain("pad.example.org"))
//	report, err := svc.Provision(ctx)      // Fig 4: attest + issue + distribute
//	err = svc.ServeWeb(app)                // attested HTTPS from inside the TEE
//
// Around the Service sit the SDK's public packages:
//
//	revelio                      — Service builder, image builds, fleets
//	revelio/attestation          — provider-neutral interfaces (Evidence,
//	                               Provider, Mux, CertSource) and the typed
//	                               error taxonomy (ErrPolicyRejected,
//	                               ErrRevoked, ErrKDSUnavailable, ...)
//	revelio/attestation/snp      — the SEV-SNP provider (verifier, KDS
//	                               client, simulator)
//	revelio/attestation/softtee  — a second, in-process software-TEE
//	                               provider (mock TDX-style quotes)
//	revelio/gateway              — the attested gateway data plane: a
//	                               TLS-terminating reverse proxy whose
//	                               RA-TLS upstreams balance across every
//	                               attested node (Service.ServeGateway),
//	                               with circuit breakers, retry budgets,
//	                               deadline propagation, and load
//	                               shedding (Config.Resilience), plus
//	                               context-aware routing policy: path
//	                               classes constrained by TCB floor,
//	                               provider, measurement, or locality,
//	                               provider traffic splits, and canary
//	                               rollouts with measurement-based
//	                               auto-rollback (Config.Routing)
//	revelio/webclient            — the end-user browser + web extension
//	revelio/apps/...             — the paper's use cases (cryptpad,
//	                               boundary, ic)
//	revelio/bench                — the experiment harness
//
// Every lifecycle operation is context-first (AddNode, RemoveNode,
// RebootNode, SetFirmware, Provision, fleet scenarios): cancellation
// surfaces as a wrapped context error, never poisons a fail-closed
// cache, and never leaves a half-joined node behind. Verification
// failures map onto the attestation taxonomy, so callers branch with
// errors.Is from any layer. The exported surface is pinned by api.txt
// (see TestAPISurfaceGolden); examples/ and cmd/ compile against the
// public packages only, enforced in CI.
//
// # Reproduction inventory
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory, examples/ for runnable entry points, and cmd/revelio-bench
// for the experiment harness that regenerates the paper's tables and
// figures. The repository-root benchmarks mirror the harness:
//
//	Table 1  (boot delays)               -> BenchmarkTable1_BootDelays
//	Table 2  (cert operations)           -> BenchmarkTable2_CertOperations
//	Table 3  (client-side attestation)   -> BenchmarkTable3_ClientSide
//	Table 4  (attestation throughput)    -> BenchmarkTable4_AttestationThroughput
//	Table 5  (fleet scalability)         -> BenchmarkTable5_FleetScalability
//	Table 6  (gateway throughput)        -> BenchmarkTable6_GatewayThroughput
//	Fig 5    (dm-crypt I/O)              -> BenchmarkFig5_DmCryptIO
//	Fig 6    (dm-verity reads)           -> BenchmarkFig6_DmVerityRead
//	ablations                            -> BenchmarkAblation_*
//	chaos    (seeded fault scheduler)    -> revelio-bench -chaos, bench.RunChaos
//	lint     (invariant analyzers)       -> revelio-lint ./..., go vet -vettool
//
// Table 4 is this reproduction's extension of the paper's Table 3
// caching argument: verifications/sec cold, with a warm VCEK cache, and
// on the full attestation fast path (parsed-certificate caches, sharded
// proof caches, and singleflight KDS fetches — see DESIGN.md's
// "Attestation fast path"). Table 5 extends the §5.3 deployment story
// to fleets under churn: provisioning and join latency plus
// steady-state attested-TLS throughput swept over fleet sizes, driven
// by the fleet lifecycle engine (see DESIGN.md's "Fleet lifecycle").
// Table 6 measures the attested gateway data plane: aggregate req/s
// through the gateway vs direct-to-leader over fleet size × client
// concurrency, zero failed requests while nodes are replaced behind
// the proxy, the overload cell — far more clients than the
// admission bound, where every response must be a success or a
// deliberate shed — and the canary cell: a staged firmware rollout
// whose canary serves errors, reporting the observed canary fraction,
// the attempts and wall time until the router's auto-rollback, and a
// strict zero requests reaching the canary afterwards — and the
// high-concurrency cell (-t6.clients, 10000 by default): that many
// long-lived keep-alive clients held in flight for a timed
// steady-state window, reporting req/s, p50/p99, a strict zero failed
// requests, and allocs/op on the proxy path, with CPU and heap pprof
// profiles of exactly that window written via -t6.profile (see
// DESIGN.md's "Attested gateway", "Gateway hot path", "Resilience
// layer", and "Context-aware routing").
// revelio-bench -json emits every result as one machine-readable JSON
// document for tracking across revisions, and -baseline (repeatable;
// files merge per experiment) regresses a run against stored documents.
// The chaos sweep (revelio-bench -chaos, bench.RunChaos) is not a
// benchmark but a property check: seeded, deterministic fault schedules
// — churn, KDS outages and partitions, policy storms, crashes mid-join
// and mid-rollout, cert-expiry waves, (with -chaos.gray) stalled-
// node gray failures, overload storms, and slow-drip bodies, and
// (with -chaos.routed) broken-canary rollouts and zone bursts against
// a routing policy — run against a live fleet serving attested-TLS
// traffic through the gateway, asserting zero failed requests outside
// fault windows, fail-closed verification, gateway coherence,
// graceful degradation (breaker-open nodes see probes only, retry
// amplification stays under budget, admitted requests meet their
// deadlines), zero out-of-policy requests under the routed profile,
// and leak-free teardown; a failing seed prints its full schedule and
// -chaos.seed=N replays it byte for byte (see DESIGN.md's "Chaos
// harness").
// The repo's standing invariants — the error taxonomy, the
// deterministic time/rand seams those chaos replays depend on, the
// context-first lifecycle, and the lock and pool disciplines — are
// additionally mechanized as a custom analyzer suite, revelio-lint,
// run in CI both standalone and as a go vet -vettool (see DESIGN.md's
// "Static analysis").
package revelio
