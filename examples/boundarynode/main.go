// Boundary Node example (paper §4.2): a protocol-translation proxy that
// gives browsers access to the Internet Computer, protected by Revelio —
// written against the public SDK (revelio, revelio/webclient,
// revelio/apps/boundary, revelio/apps/ic).
//
// The demo stands up a small IC (one 4-replica subnet with a counter
// canister), puts a Boundary Node in front of it inside a Revelio-
// protected confidential VM, attests the BN from the client side, and
// exercises both the happy path and the attack the paper motivates: a
// *malicious* Boundary Node that rewrites canister replies is caught by
// the verifying service worker, because it cannot forge the subnet's
// threshold certificate.
//
// Run with: go run ./examples/boundarynode
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"

	"revelio"
	"revelio/apps/boundary"
	"revelio/apps/ic"
	"revelio/webclient"
)

const domain = "ic0.example.org"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "boundarynode example:", err)
		os.Exit(1)
	}
}

func counterCanister() *ic.Canister {
	return ic.NewCanister("counter",
		map[string]ic.Handler{
			"get": func(s *ic.State, _ []byte) ([]byte, error) {
				v := s.Get("n")
				if v == nil {
					v = []byte{0}
				}
				return v, nil
			},
		},
		map[string]ic.Handler{
			"inc": func(s *ic.State, _ []byte) ([]byte, error) {
				v := s.Get("n")
				var n byte
				if len(v) > 0 {
					n = v[0]
				}
				n++
				s.Set("n", []byte{n})
				return []byte{n}, nil
			},
		})
}

func run() error {
	ctx := context.Background()

	// --- The Internet Computer -------------------------------------------
	subnet, err := ic.NewSubnet("subnet-demo", 4, rand.New(rand.NewSource(42)))
	if err != nil {
		return err
	}
	network := ic.NewNetwork()
	network.AddSubnet(subnet)
	if err := network.InstallCanister("subnet-demo", counterCanister()); err != nil {
		return err
	}

	// --- A Revelio-protected Boundary Node --------------------------------
	svc, err := revelio.New(ctx, revelio.WithProfile(revelio.ProfileBoundaryNode), revelio.WithDomain(domain))
	if err != nil {
		return err
	}
	defer svc.Close()
	if _, err := svc.Provision(ctx); err != nil {
		return err
	}
	proxy := boundary.NewProxy(network, "1.0.0")
	if err := svc.ServeWeb(func(*revelio.Node) http.Handler { return proxy }); err != nil {
		return err
	}

	// --- Client: attest the BN, then talk to the IC through it ------------
	b := webclient.NewBrowser(svc.CARootPool(), 0)
	b.Resolve(domain, svc.WebAddr(0))
	ext := webclient.NewExtension(b, svc.Verifier())
	ext.RegisterSite(domain, svc.Golden())
	if _, m, err := ext.Navigate(ctx, domain, "/sw.js"); err != nil {
		return fmt.Errorf("attest BN: %w", err)
	} else {
		fmt.Printf("attested the Boundary Node (fresh attestation: %v)\n", m.Attested)
	}

	// The service worker (fetched from the attested BN) verifies subnet
	// certificates on every response. It talks to the BN's HTTPS address
	// directly; the subnet key material comes from the NNS out of band.
	sw := boundary.NewServiceWorker(subnet.PublicKey())

	// For clarity the IC calls go straight at the proxy handler over an
	// in-process HTTP server (the attested TLS path was exercised above).
	local := newLocalServer(proxy)
	defer local.close()

	for i := 1; i <= 3; i++ {
		reply, err := sw.Call(ctx, http.DefaultClient, local.url, "counter", ic.KindUpdate, "inc", nil)
		if err != nil {
			return err
		}
		fmt.Printf("inc -> %d (threshold certificate verified)\n", reply[0])
	}

	// --- The attack: a malicious BN rewrites replies -----------------------
	proxy.TamperReplies(true)
	_, err = sw.Call(ctx, http.DefaultClient, local.url, "counter", ic.KindQuery, "get", nil)
	if !errors.Is(err, boundary.ErrTampered) {
		return fmt.Errorf("tampered reply not detected: %v", err)
	}
	fmt.Println("malicious BN detected: tampered reply failed certificate verification")
	proxy.TamperReplies(false)

	fmt.Println("\nboundarynode example OK")
	return nil
}

// newLocalServer runs a handler on a loopback HTTP listener.
type localServer struct {
	url   string
	close func()
}

func newLocalServer(h http.Handler) *localServer {
	server := &http.Server{Handler: h}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err) // startup-only failure in an example binary
	}
	go func() { _ = server.Serve(ln) }()
	return &localServer{
		url:   "http://" + ln.Addr().String(),
		close: func() { _ = server.Close() },
	}
}
