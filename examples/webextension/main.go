// Web-extension example (paper §5.3.2): the end-user's view of Revelio,
// written against the public SDK (revelio + revelio/webclient).
//
// The demo walks the extension's full feature set against a live
// deployment:
//
//   - opportunistic discovery of Revelio sites (the robots.txt-style
//     well-known URL),
//   - manual registration with a golden measurement,
//   - the fresh-session attestation flow and per-request connection
//     monitoring,
//   - and the two failure modes end-users are protected from: a service
//     running unexpected software (measurement mismatch) and a DNS
//     redirect onto a valid-but-unattested certificate (connection
//     hijack).
//
// Run with: go run ./examples/webextension
package main

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"

	"revelio"
	"revelio/webclient"
)

const domain = "secure.example.org"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webextension example:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	svc, err := revelio.New(ctx, revelio.WithDomain(domain))
	if err != nil {
		return err
	}
	defer svc.Close()
	if _, err := svc.Provision(ctx); err != nil {
		return err
	}
	if err := svc.ServeWeb(func(*revelio.Node) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("sensitive service"))
		})
	}); err != nil {
		return err
	}

	b := webclient.NewBrowser(svc.CARootPool(), 0)
	b.Resolve(domain, svc.WebAddr(0))
	ext := webclient.NewExtension(b, svc.Verifier())

	// 1. Opportunistic discovery.
	discovered, err := ext.Discover(ctx, domain)
	if err != nil {
		return err
	}
	fmt.Printf("discovered a Revelio site at %s\n  reported measurement: %s\n", domain, discovered)
	fmt.Printf("  (the user validates this against the published golden value: match=%v)\n\n",
		discovered == svc.Golden())

	// 2. Manual registration + attested navigation.
	ext.RegisterSite(domain, svc.Golden())
	if _, m, err := ext.Navigate(ctx, domain, "/"); err != nil {
		return err
	} else {
		fmt.Printf("navigated with attestation: fresh=%v attestation=%v\n\n", m.Attested, m.AttestationTime)
	}

	// 3. Failure mode A: wrong golden value (service runs unexpected
	// software, or the user mistyped the measurement).
	wrongExt := webclient.NewExtension(b, svc.Verifier())
	var wrong revelio.Measurement
	wrong[0] = 0xBB
	wrongExt.RegisterSite(domain, wrong)
	if _, _, err := wrongExt.Navigate(ctx, domain, "/"); errors.Is(err, webclient.ErrMeasurementMismatch) {
		fmt.Println("measurement mismatch correctly flagged (user is warned before any data flows)")
	} else {
		return fmt.Errorf("measurement mismatch not flagged: %v", err)
	}

	// 4. Failure mode B: DNS redirect onto an attacker server that even
	// holds a browser-valid certificate for the domain.
	attackerAddr, err := startAttacker(ctx, svc)
	if err != nil {
		return err
	}
	b.Resolve(domain, attackerAddr)
	if _, _, err := ext.Navigate(ctx, domain, "/login"); errors.Is(err, webclient.ErrConnectionHijacked) {
		fmt.Println("DNS redirect correctly flagged: connection no longer terminates in the attested VM")
	} else {
		return fmt.Errorf("redirect not flagged: %v", err)
	}

	fmt.Println("\nwebextension example OK")
	return nil
}

// startAttacker runs a phishing server with a CA-valid certificate for
// the domain (the attacker controls DNS, so DNS-01 passes).
func startAttacker(ctx context.Context, svc *revelio.Service) (string, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return "", err
	}
	csr, err := x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
		Subject:  pkix.Name{CommonName: domain},
		DNSNames: []string{domain},
	}, key)
	if err != nil {
		return "", err
	}
	certDER, err := svc.ObtainCertificate(ctx, domain, csr)
	if err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	tlsLn := tls.NewListener(ln, &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{certDER}, PrivateKey: key}},
	})
	server := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("give me your password"))
	})}
	go func() { _ = server.Serve(tlsLn) }()
	return ln.Addr().String(), nil
}
