// Auditor example (paper §3.4.7): delegated verification for end-users
// who cannot rebuild images themselves, written against the public SDK
// (revelio, revelio/attestation, revelio/attestation/snp).
//
// The flow:
//
//  1. The service provider publishes the image *sources* (the build
//     spec) and deploys the service.
//  2. An independent auditor rebuilds the image from sources — the
//     reproducible build guarantees a bit-identical result — computes
//     the golden measurement, and proposes it to the community-governed
//     trusted registry, where voters approve it.
//  3. End-users' extensions consult the registry instead of holding
//     hard-coded values.
//  4. When the provider rolls out v2, the auditor supersedes v1 — and a
//     rollback to the old (now revoked) image is caught even though its
//     report is perfectly authentic (§6.1.4).
//
// Run with: go run ./examples/auditor
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"revelio"
	"revelio/attestation"
	"revelio/attestation/snp"
)

const domain = "audited.example.org"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "auditor example:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// The community's trusted registry: three voters, two must agree.
	trusted := revelio.NewTrustRegistry(2)
	for _, voter := range []string{"auditor-gmbh", "university-lab", "dao-member"} {
		trusted.AddVoter(voter)
	}

	// --- Service provider: publish sources, deploy v1 ---------------------
	svc, err := revelio.New(ctx, revelio.WithDomain(domain), revelio.WithTrustRegistry(trusted))
	if err != nil {
		return err
	}
	defer svc.Close()

	// Provisioning fails while nothing is trusted yet — the SP node
	// itself consults the registry, and the typed taxonomy says exactly
	// why: the measurement is not (yet) a golden value.
	if _, err := svc.Provision(ctx); !errors.Is(err, attestation.ErrUntrustedMeasurement) {
		return fmt.Errorf("expected untrusted-measurement rejection before any votes, got %v", err)
	}
	fmt.Println("before any audit: provisioning rejected (no trusted measurement)")

	// --- Auditor: rebuild from sources, compute the golden value ----------
	audit, err := revelio.BuildImage(revelio.ProfileCryptPad) // independent rebuild
	if err != nil {
		return err
	}
	if audit.Golden != svc.Golden() {
		return fmt.Errorf("auditor rebuild diverged — reproducibility broken")
	}
	fmt.Printf("auditor reproduced the measurement from sources:\n  %s\n", audit.Golden)

	if err := trusted.Propose(audit.Golden, "cryptpad-server 1.0.0 (audited)"); err != nil {
		return err
	}
	if err := trusted.Vote("auditor-gmbh", audit.Golden); err != nil {
		return err
	}
	if trusted.IsTrusted(audit.Golden) {
		return fmt.Errorf("trusted below threshold")
	}
	if err := trusted.Vote("university-lab", audit.Golden); err != nil {
		return err
	}
	fmt.Println("community voted: measurement is now a golden value")

	// --- With the registry populated, everything proceeds ------------------
	if _, err := svc.Provision(ctx); err != nil {
		return fmt.Errorf("provisioning after votes: %w", err)
	}
	fmt.Println("provisioning succeeded under the community-approved value")

	// --- Rollout of v2 supersedes v1 (rollback defence, §6.1.4) ------------
	auditV2, err := revelio.BuildImage(revelio.ProfileCryptPad,
		revelio.BuildVersion("1.1.0")) // security fix
	if err != nil {
		return err
	}
	if err := trusted.Supersede(audit.Golden, auditV2.Golden, "cryptpad-server 1.1.0 (audited, fixes CVE)"); err != nil {
		return err
	}
	if err := trusted.Vote("auditor-gmbh", auditV2.Golden); err != nil {
		return err
	}
	if err := trusted.Vote("dao-member", auditV2.Golden); err != nil {
		return err
	}

	// The still-running v1 node now fails verification — a provider
	// keeping (or rolling back to) the vulnerable version is caught, and
	// the taxonomy distinguishes *revoked* from never-trusted.
	rep, err := svc.Node(0).VM.Report(snp.ReportData{})
	if err != nil {
		return err
	}
	verifier := snp.NewVerifier(svc.CertSource(), trusted)
	if _, err := verifier.VerifyReport(ctx, rep); !errors.Is(err, attestation.ErrRevoked) {
		return fmt.Errorf("rollback not caught as revoked: %v", err)
	}
	fmt.Println("after the v2 rollout, the old image is revoked: rollback attempt rejected")

	fmt.Println("\nauditor example OK")
	return nil
}
