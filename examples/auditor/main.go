// Auditor example (paper §3.4.7): delegated verification for end-users
// who cannot rebuild images themselves.
//
// The flow:
//
//  1. The service provider publishes the image *sources* (the build
//     spec) and deploys the service.
//  2. An independent auditor rebuilds the image from sources — the
//     reproducible build guarantees a bit-identical result — computes
//     the golden measurement, and proposes it to the community-governed
//     trusted registry, where voters approve it.
//  3. End-users' extensions consult the registry instead of holding
//     hard-coded values.
//  4. When the provider rolls out v2, the auditor supersedes v1 — and a
//     rollback to the old (now revoked) image is caught even though its
//     report is perfectly authentic (§6.1.4).
//
// Run with: go run ./examples/auditor
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"revelio/internal/attest"
	"revelio/internal/certmgr"
	"revelio/internal/core"
	"revelio/internal/firmware"
	"revelio/internal/hypervisor"
	"revelio/internal/imagebuild"
	"revelio/internal/registry"
)

const domain = "audited.example.org"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "auditor example:", err)
		os.Exit(1)
	}
}

func run() error {
	// The community's trusted registry: three voters, two must agree.
	trusted := registry.New(2)
	for _, voter := range []string{"auditor-gmbh", "university-lab", "dao-member"} {
		trusted.AddVoter(voter)
	}

	// --- Service provider: publish sources, deploy v1 ---------------------
	reg := imagebuild.NewRegistry()
	base := imagebuild.PublishUbuntuBase(reg)
	specV1 := imagebuild.CryptpadSpec(base)

	deployment, err := core.New(core.Config{
		Spec:          specV1,
		Registry:      reg,
		Nodes:         1,
		Domain:        domain,
		TrustRegistry: trusted,
	})
	if err != nil {
		return err
	}
	defer deployment.Close()

	// Provisioning fails while nothing is trusted yet — the SP node
	// itself consults the registry.
	if _, err := deployment.ProvisionCertificates(context.Background()); !errors.Is(err, certmgr.ErrNodeRejected) {
		return fmt.Errorf("expected rejection before any votes, got %v", err)
	}
	fmt.Println("before any audit: provisioning rejected (no trusted measurement)")

	// --- Auditor: rebuild from sources, compute the golden value ----------
	auditorImg, err := imagebuild.NewBuilder(reg).Build(specV1) // independent rebuild
	if err != nil {
		return err
	}
	goldenV1, err := hypervisor.ExpectedMeasurement(
		firmware.NewOVMF("2023.05"),
		hypervisor.BootBlobs{
			Kernel:  auditorImg.Kernel,
			Initrd:  auditorImg.Initrd,
			Cmdline: auditorImg.Cmdline,
		})
	if err != nil {
		return err
	}
	if goldenV1 != deployment.Golden {
		return fmt.Errorf("auditor rebuild diverged — reproducibility broken")
	}
	fmt.Printf("auditor reproduced the measurement from sources:\n  %s\n", goldenV1)

	if err := trusted.Propose(goldenV1, "cryptpad-server 1.0.0 (audited)"); err != nil {
		return err
	}
	if err := trusted.Vote("auditor-gmbh", goldenV1); err != nil {
		return err
	}
	if trusted.IsTrusted(goldenV1) {
		return fmt.Errorf("trusted below threshold")
	}
	if err := trusted.Vote("university-lab", goldenV1); err != nil {
		return err
	}
	fmt.Println("community voted: measurement is now a golden value")

	// --- With the registry populated, everything proceeds ------------------
	if _, err := deployment.ProvisionCertificates(context.Background()); err != nil {
		return fmt.Errorf("provisioning after votes: %w", err)
	}
	fmt.Println("provisioning succeeded under the community-approved value")

	// --- Rollout of v2 supersedes v1 (rollback defence, §6.1.4) ------------
	specV2 := specV1
	specV2.Version = "1.1.0" // security fix
	v2Img, err := imagebuild.NewBuilder(reg).Build(specV2)
	if err != nil {
		return err
	}
	goldenV2, err := hypervisor.ExpectedMeasurement(
		firmware.NewOVMF("2023.05"),
		hypervisor.BootBlobs{Kernel: v2Img.Kernel, Initrd: v2Img.Initrd, Cmdline: v2Img.Cmdline})
	if err != nil {
		return err
	}
	if err := trusted.Supersede(goldenV1, goldenV2, "cryptpad-server 1.1.0 (audited, fixes CVE)"); err != nil {
		return err
	}
	if err := trusted.Vote("auditor-gmbh", goldenV2); err != nil {
		return err
	}
	if err := trusted.Vote("dao-member", goldenV2); err != nil {
		return err
	}

	// The still-running v1 node now fails verification — a provider
	// keeping (or rolling back to) the vulnerable version is caught.
	rep, err := deployment.Nodes[0].VM.Report([64]byte{})
	if err != nil {
		return err
	}
	verifier := attest.NewVerifier(deployment.KDSClient, trusted)
	if _, err := verifier.VerifyReport(context.Background(), rep); !errors.Is(err, attest.ErrUntrustedMeasurement) {
		return fmt.Errorf("rollback not caught: %v", err)
	}
	fmt.Println("after the v2 rollout, the old image is revoked: rollback attempt rejected")

	fmt.Println("\nauditor example OK")
	return nil
}
