// Canary: the context-aware routing loop from OPERATIONS.md, written
// entirely against the public SDK (package revelio + revelio/gateway —
// no internal imports).
//
//  1. Run a two-node attested fleet behind the gateway with canary
//     routing configured: during a staged firmware rollout, 50% of
//     traffic prefers nodes on the new golden measurement, and the
//     gateway auto-rolls the canary back at a 50% failure rate over at
//     least 5 canary requests.
//  2. Stage a new measured image and add a canary node (joins during a
//     staged rollout boot the new firmware); watch the gateway steer
//     the configured fraction to it.
//  3. Break the canary (it starts serving 500s) and watch the
//     measurement-based accounting roll it back: the canary
//     measurement becomes a hard routing exclusion and traffic
//     continues on the baseline nodes.
//  4. Recover per the runbook: remove the canary node first, then
//     abort the rollout (revoking the canary measurement), re-verify
//     the fleet, and confirm serving.
//
// Run with: go run ./examples/canary
package main

import (
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"revelio"
	"revelio/gateway"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "canary:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// Shared seams the per-node apps read: the canary measurement (set
	// once the rollout is staged), the broken switch, and a counter of
	// requests the canary actually served.
	var (
		canaryMeas atomic.Value // revelio.Measurement
		broken     atomic.Bool
		canaryHits atomic.Int64
	)
	isCanary := func(m revelio.Measurement) bool {
		cm, ok := canaryMeas.Load().(revelio.Measurement)
		return ok && m == cm
	}

	f, err := revelio.NewFleet(ctx, revelio.FleetConfig{
		Nodes: 2,
		App: func(n *revelio.Node) http.Handler {
			m := n.VM.Measurement()
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == gateway.HealthPath {
					io.WriteString(w, "ok")
					return
				}
				if isCanary(m) {
					canaryHits.Add(1)
					if broken.Load() {
						http.Error(w, "canary regression", http.StatusInternalServerError)
						return
					}
				}
				io.WriteString(w, "ok from "+m.String()[:8])
			})
		},
	})
	if err != nil {
		return err
	}
	defer f.Close()

	gw, err := gateway.New(gateway.Config{
		Source:         f,
		Verifier:       f.Mux(),
		GetCertificate: f.ServingCertificate,
		Routing: gateway.Routing{
			Canary: gateway.CanaryConfig{Weight: 50, MaxFailureRate: 0.5, MinSamples: 5},
		},
	})
	if err != nil {
		return err
	}
	if err := gw.Start(); err != nil {
		return err
	}
	defer gw.Close()

	client := &http.Client{Transport: &http.Transport{TLSClientConfig: &tls.Config{
		RootCAs:    f.Deployment().CARootPool(),
		ServerName: f.Endpoints().Domain,
	}}}
	get := func() (int, error) {
		resp, err := client.Get("https://" + gw.Addr() + "/")
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// --- Stage the rollout and add the canary --------------------------
	newGolden, err := f.StageFirmware(ctx, "2026.08-cvm")
	if err != nil {
		return err
	}
	canaryMeas.Store(newGolden)
	if _, err := f.AddNode(ctx); err != nil {
		return err
	}
	fmt.Printf("staged rollout to %s...; canary node joined\n", newGolden.String()[:8])

	// The canary fraction is driven by a deterministic counter, so the
	// weight is exact over every 100-request block — not statistical.
	for i := 0; i < 100; i++ {
		if _, err := get(); err != nil {
			return err
		}
	}
	s := gw.Stats()
	fmt.Printf("healthy canary: %d of 100 requests steered to the new image (weight 50%%)\n",
		s.CanaryRequests)

	// --- Break the canary and let the router catch it ------------------
	broken.Store(true)
	deadline := time.Now().Add(30 * time.Second)
	for !gw.Stats().CanaryRolledBack {
		if time.Now().After(deadline) {
			return fmt.Errorf("no rollback after 30s: %+v", gw.Stats())
		}
		// Canary 500s are client-visible (the gateway never replays a
		// served response); that is exactly the failure signal the
		// accounting consumes.
		if _, err := get(); err != nil {
			return err
		}
	}
	broken.Store(false)
	s = gw.Stats()
	fmt.Printf("rolled back: %d canary failures over %d canary requests; measurement %s... excluded\n",
		s.CanaryFailures, s.CanaryRequests, s.CanaryMeasurement[:8])

	// Traffic continues on the baseline nodes; the canary serves nothing.
	frozen := canaryHits.Load()
	for i := 0; i < 20; i++ {
		code, err := get()
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("post-rollback request got %d", code)
		}
	}
	fmt.Printf("after rollback: 20 requests served, %d reached the canary\n",
		canaryHits.Load()-frozen)

	// --- Recover: runbook order — canary nodes out, then abort ---------
	for {
		idx := -1
		for i, n := range f.Deployment().Nodes {
			if n.VM.Measurement() == newGolden {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		if err := f.RemoveNode(ctx, idx); err != nil {
			return err
		}
	}
	if err := f.AbortRollOut(ctx); err != nil {
		return err
	}
	if err := f.VerifyFleet(ctx); err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		if code, err := get(); err != nil || code != http.StatusOK {
			return fmt.Errorf("post-abort request: code %d, err %v", code, err)
		}
	}
	fmt.Println("rollout aborted; fleet re-verified on the restored golden and serving")
	return nil
}
