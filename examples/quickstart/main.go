// Quickstart: the smallest end-to-end Revelio flow.
//
//  1. Reproducibly build a service image and compute its golden
//     measurement from sources.
//  2. Deploy one confidential VM (software SEV-SNP), boot it through
//     measured direct boot, and provision its TLS certificate through
//     the SP node with attestation.
//  3. As an end-user, open the site in a browser with the Revelio web
//     extension: the first access remotely attests the VM and binds the
//     TLS session to the attested key.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"

	"revelio/internal/browser"
	"revelio/internal/core"
	"revelio/internal/imagebuild"
	"revelio/internal/webext"
)

const domain = "hello.example.org"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Service provider side -----------------------------------------
	reg := imagebuild.NewRegistry()
	base := imagebuild.PublishUbuntuBase(reg)
	spec := imagebuild.CryptpadSpec(base)
	spec.Name = "hello-service"

	deployment, err := core.New(core.Config{
		Spec:     spec,
		Registry: reg,
		Nodes:    1,
		Domain:   domain,
	})
	if err != nil {
		return err
	}
	defer deployment.Close()
	fmt.Printf("built image; golden measurement (what auditors publish):\n  %s\n\n", deployment.Golden)

	result, err := deployment.ProvisionCertificates(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("SP node provisioned certificates (leader %s)\n", result.LeaderURL)
	fmt.Printf("  evidence retrieval:  %v\n", result.Timings.EvidenceRetrieval)
	fmt.Printf("  evidence validation: %v\n", result.Timings.EvidenceValidation)
	fmt.Printf("  cert generation:     %v\n", result.Timings.CertGeneration)
	fmt.Printf("  cert distribution:   %v\n\n", result.Timings.CertDistribution)

	if err := deployment.StartWeb(func(*core.Node) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("hello from inside a confidential VM\n"))
		})
	}); err != nil {
		return err
	}

	// --- End-user side ---------------------------------------------------
	b := browser.New(deployment.CARootPool(), 0)
	b.Resolve(domain, deployment.Nodes[0].WebAddr())
	ext := webext.New(b, deployment.Verifier)
	ext.RegisterSite(domain, deployment.Golden)

	resp, metrics, err := ext.Navigate(context.Background(), domain, "/")
	if err != nil {
		return err
	}
	fmt.Printf("end-user loaded https://%s/ through the web extension:\n", domain)
	fmt.Printf("  body:            %q\n", resp.Body)
	fmt.Printf("  fresh attestation performed: %v (took %v)\n", metrics.Attested, metrics.AttestationTime)

	_, metrics2, err := ext.Navigate(context.Background(), domain, "/again")
	if err != nil {
		return err
	}
	fmt.Printf("  second request:  attested=%v (connection validated in %v)\n",
		metrics2.Attested, metrics2.ConnValidation)
	fmt.Println("\nquickstart OK: the session is cryptographically bound to the attested VM")
	return nil
}
