// Quickstart: the smallest end-to-end Revelio flow, written entirely
// against the public SDK (package revelio + revelio/webclient — no
// internal imports).
//
//  1. Reproducibly build a service image and compute its golden
//     measurement from sources.
//  2. Deploy one confidential VM (software SEV-SNP), boot it through
//     measured direct boot, and provision its TLS certificate through
//     the SP node with attestation.
//  3. As an end-user, open the site in a browser with the Revelio web
//     extension: the first access remotely attests the VM and binds the
//     TLS session to the attested key.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"

	"revelio"
	"revelio/webclient"
)

const domain = "hello.example.org"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// --- Service provider side -----------------------------------------
	svc, err := revelio.New(ctx,
		revelio.WithDomain(domain),
		revelio.WithImage(revelio.BuildName("hello-service")),
	)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Printf("built image; golden measurement (what auditors publish):\n  %s\n\n", svc.Golden())

	result, err := svc.Provision(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("SP node provisioned certificates (leader %s)\n", result.LeaderURL)
	fmt.Printf("  evidence retrieval:  %v\n", result.Timings.EvidenceRetrieval)
	fmt.Printf("  evidence validation: %v\n", result.Timings.EvidenceValidation)
	fmt.Printf("  cert generation:     %v\n", result.Timings.CertGeneration)
	fmt.Printf("  cert distribution:   %v\n\n", result.Timings.CertDistribution)

	if err := svc.ServeWeb(func(*revelio.Node) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("hello from inside a confidential VM\n"))
		})
	}); err != nil {
		return err
	}

	// --- End-user side ---------------------------------------------------
	b := webclient.NewBrowser(svc.CARootPool(), 0)
	b.Resolve(domain, svc.WebAddr(0))
	ext := webclient.NewExtension(b, svc.Verifier())
	ext.RegisterSite(domain, svc.Golden())

	resp, metrics, err := ext.Navigate(ctx, domain, "/")
	if err != nil {
		return err
	}
	fmt.Printf("end-user loaded https://%s/ through the web extension:\n", domain)
	fmt.Printf("  body:            %q\n", resp.Body)
	fmt.Printf("  fresh attestation performed: %v (took %v)\n", metrics.Attested, metrics.AttestationTime)

	_, metrics2, err := ext.Navigate(ctx, domain, "/again")
	if err != nil {
		return err
	}
	fmt.Printf("  second request:  attested=%v (connection validated in %v)\n",
		metrics2.Attested, metrics2.ConnValidation)
	fmt.Println("\nquickstart OK: the session is cryptographically bound to the attested VM")
	return nil
}
