// CryptPad example (paper §4.1): an end-to-end-encrypted collaboration
// suite hosted in a Revelio-protected confidential VM, written against
// the public SDK (revelio, revelio/webclient, revelio/apps/cryptpad).
//
// Two things compose here:
//
//   - E2E encryption means the server only ever stores ciphertext — but a
//     malicious server could still serve rigged client code or tamper
//     with stored blobs.
//   - Revelio attestation lets the users verify the exact server software
//     before trusting it, and the sealed persistent volume keeps pads
//     confidential at rest.
//
// The example walks a pad through two attested collaborators and then
// demonstrates the attack surface: server-side tampering of the stored
// ciphertext is detected by the clients.
//
// Run with: go run ./examples/cryptpad
package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"

	"revelio"
	"revelio/apps/cryptpad"
	"revelio/webclient"
)

const domain = "pad.example.org"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cryptpad example:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	svc, err := revelio.New(ctx, revelio.WithProfile(revelio.ProfileCryptPad), revelio.WithDomain(domain))
	if err != nil {
		return err
	}
	defer svc.Close()
	if _, err := svc.Provision(ctx); err != nil {
		return err
	}

	// The pad server runs inside the confidential VM; its binary is part
	// of the measured rootfs.
	padServer := cryptpad.NewServer()
	if err := svc.ServeWeb(func(*revelio.Node) http.Handler { return padServer }); err != nil {
		return err
	}

	// --- Alice: attest the server, then create an encrypted pad ----------
	aliceBrowser := webclient.NewBrowser(svc.CARootPool(), 0)
	aliceBrowser.Resolve(domain, svc.WebAddr(0))
	aliceExt := webclient.NewExtension(aliceBrowser, svc.Verifier())
	aliceExt.RegisterSite(domain, svc.Golden())
	if _, m, err := aliceExt.Navigate(ctx, domain, "/"); err == nil {
		fmt.Printf("alice attested %s (fresh attestation: %v)\n", domain, m.Attested)
	} else {
		return fmt.Errorf("alice attestation: %w", err)
	}

	pad, err := cryptpad.NewPad()
	if err != nil {
		return err
	}
	plaintext := []byte("design doc draft: revelio ships friday")
	ciphertext, err := pad.Seal(plaintext, 1)
	if err != nil {
		return err
	}
	if _, err := padServer.Put(pad.ID, ciphertext, 0); err != nil {
		return err
	}
	link := pad.ShareLink(domain)
	fmt.Printf("alice created pad %s and shared the link (key stays in the URL fragment)\n", pad.ID)

	// --- Bob: attest, then open the pad via the share link ---------------
	bobBrowser := webclient.NewBrowser(svc.CARootPool(), 0)
	bobBrowser.Resolve(domain, svc.WebAddr(0))
	bobExt := webclient.NewExtension(bobBrowser, svc.Verifier())
	bobExt.RegisterSite(domain, svc.Golden())
	if _, _, err := bobExt.Navigate(ctx, domain, "/"); err != nil {
		return fmt.Errorf("bob attestation: %w", err)
	}
	bobPad, err := cryptpad.ParseShareLink(link)
	if err != nil {
		return err
	}
	stored, version, err := padServer.Get(bobPad.ID)
	if err != nil {
		return err
	}
	decrypted, err := bobPad.Open(stored, version)
	if err != nil {
		return err
	}
	if !bytes.Equal(decrypted, plaintext) {
		return fmt.Errorf("bob decrypted %q, want %q", decrypted, plaintext)
	}
	fmt.Printf("bob attested the server and read the pad: %q\n", decrypted)

	// --- What the server sees / can do ------------------------------------
	if bytes.Contains(stored, []byte("revelio")) {
		return fmt.Errorf("BUG: plaintext visible server-side")
	}
	fmt.Println("server-side storage is ciphertext only (E2E holds)")

	tampered := append([]byte(nil), stored...)
	tampered[len(tampered)-1] ^= 1
	if _, err := bobPad.Open(tampered, version); err == nil {
		return fmt.Errorf("BUG: tampered pad decrypted")
	}
	fmt.Println("server-side tampering of the pad is detected by clients")
	fmt.Println("\ncryptpad example OK")
	return nil
}
