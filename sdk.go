package revelio

import (
	"context"

	"revelio/internal/certmgr"
	"revelio/internal/core"
	"revelio/internal/fleet"
	"revelio/internal/gateway"
	"revelio/internal/imagebuild"
	"revelio/internal/measure"
	"revelio/internal/registry"
)

// Core vocabulary of the SDK, under public names. These are aliases to
// the battle-tested internal implementations — not copies — so values
// flow freely between the facade, the attestation providers and the
// fleet engine.
type (
	// Measurement is a launch measurement (the unit of trust decisions).
	Measurement = measure.Measurement
	// Node is one running Revelio VM with its agent and servers.
	Node = core.Node
	// Deployment is the orchestration layer under a Service — exposed
	// for power users; most callers stay on the Service methods.
	Deployment = core.Deployment
	// ProvisionReport reports a completed certificate-provisioning run,
	// with the paper's Table 2 timing decomposition.
	ProvisionReport = certmgr.ProvisionResult
	// ProvisionTimings decomposes one provisioning run.
	ProvisionTimings = certmgr.Timings
	// TrustRegistry is the community-governed trusted registry
	// (propose / vote / revoke / supersede). It implements
	// attestation.TrustPolicy and attestation.RevocationChecker.
	TrustRegistry = registry.Registry
	// RegistryEntry is the public state of one registered measurement.
	RegistryEntry = registry.Entry
	// BuiltImage is a reproducibly built service image.
	BuiltImage = imagebuild.Image
	// ImageManifest is the content-addressed artifact manifest auditors
	// compare across independent rebuilds.
	ImageManifest = imagebuild.Manifest

	// Fleet drives a deployment through lifecycle operations — dynamic
	// membership, certificate rotation, revocation storms, KDS outages,
	// measured-image rollouts — while the web tier keeps serving.
	Fleet = fleet.Fleet
	// FleetConfig describes a fleet.
	FleetConfig = fleet.Config
	// FleetEndpoint is one node in a fleet's published serving view.
	FleetEndpoint = fleet.Endpoint
	// FleetSnapshot is one immutable version of a fleet's serving view.
	FleetSnapshot = fleet.Snapshot

	// Gateway is the attested gateway data plane fronting a service or
	// fleet (see revelio/gateway and Service.ServeGateway).
	Gateway = gateway.Gateway
)

// ParseMeasurement parses a hex-encoded measurement.
func ParseMeasurement(s string) (Measurement, error) { return measure.ParseMeasurement(s) }

// NewFleet builds a fleet: image, nodes, provisioning, web tier, and a
// provider-neutral verification mux, all in one call. See FleetConfig
// for the knobs and Fleet for the lifecycle surface.
func NewFleet(ctx context.Context, cfg FleetConfig) (*Fleet, error) { return fleet.New(ctx, cfg) }

// Fleet lifecycle errors.
var (
	// ErrLastNode reports an attempt to remove a fleet's only node.
	ErrLastNode = fleet.ErrLastNode
	// ErrNoLeader reports an operation that needs a standing leader.
	ErrNoLeader = fleet.ErrNoLeader
	// ErrNodeRejected reports a node that failed the SP's attestation
	// during provisioning (the inner error carries the attestation
	// taxonomy: errors.Is it against attestation.Err*).
	ErrNodeRejected = certmgr.ErrNodeRejected
	// ErrNotReady reports an agent that has not completed provisioning.
	ErrNotReady = certmgr.ErrNotReady
)

// NewTrustRegistry creates a trusted registry requiring threshold votes
// before a proposed measurement becomes a golden value.
func NewTrustRegistry(threshold int) *TrustRegistry { return registry.New(threshold) }
