package snp

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"revelio/attestation"
)

type rig struct {
	sim      *Simulator
	signer   ReportSigner
	golden   Measurement
	verifier *Verifier
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sim, err := NewSimulator([]byte("snp-pkg-test"))
	if err != nil {
		t.Fatal(err)
	}
	signer, golden, err := sim.LaunchGuest([]byte("chip-a"), 5, []byte("guest blob"))
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(sim.Handler())
	t.Cleanup(server.Close)
	verifier := NewVerifier(NewKDSClient(server.URL, nil), NewStaticGolden(golden))
	return &rig{sim: sim, signer: signer, golden: golden, verifier: verifier}
}

func TestProviderIssueVerify(t *testing.T) {
	r := newRig(t)
	p := NewNodeProvider(r.signer, r.verifier)
	if p.Name() != ProviderName {
		t.Errorf("Name() = %q", p.Name())
	}
	ev, err := p.Issue(context.Background(), []byte("tls key der"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.VerifyEvidence(context.Background(), ev)
	if err != nil {
		t.Fatalf("VerifyEvidence: %v", err)
	}
	if res.Measurement != r.golden || res.Provider != ProviderName || res.TCB != 5 {
		t.Errorf("result = %+v", res)
	}
	if res.Expiry.IsZero() {
		t.Error("no VCEK expiry propagated")
	}
	if err := p.CheckResult(res); err != nil {
		t.Errorf("CheckResult: %v", err)
	}
}

func TestVerifyOnlyProviderCannotIssue(t *testing.T) {
	r := newRig(t)
	p := NewProvider(r.verifier)
	if _, err := p.Issue(context.Background(), []byte("x")); err == nil {
		t.Fatal("verify-only provider issued evidence")
	}
	if p.Verifier() != r.verifier {
		t.Error("Verifier() does not expose the wrapped verifier")
	}
}

func TestEvidenceBundleBridge(t *testing.T) {
	r := newRig(t)
	p := NewNodeProvider(r.signer, r.verifier)
	ev, err := p.Issue(context.Background(), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// The neutral envelope decodes as a bundle document and re-wraps.
	wire, err := ev.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := attestation.DecodeEvidence(wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.VerifyEvidence(context.Background(), back); err != nil {
		t.Fatalf("re-decoded evidence: %v", err)
	}

	// A bare bundle (the well-known endpoint's wire format) bridges in.
	report, err := r.signer.Report(HashOf([]byte("wk payload")))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := report.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bundle := &Bundle{ReportRaw: raw, Payload: []byte("wk payload")}
	bundleJSON, err := bundle.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := EvidenceFromBundleJSON(bundleJSON)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.VerifyEvidence(context.Background(), ev2); err != nil {
		t.Fatalf("bridged bundle: %v", err)
	}
}

func TestEnvelopePayloadMismatch(t *testing.T) {
	r := newRig(t)
	p := NewNodeProvider(r.signer, r.verifier)
	ev, err := p.Issue(context.Background(), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	ev.Payload = []byte("someone else's payload")
	if _, err := p.VerifyEvidence(context.Background(), ev); !errors.Is(err, attestation.ErrBindingMismatch) {
		t.Fatalf("payload mismatch: %v, want ErrBindingMismatch", err)
	}
}

func TestWrongProviderAndBadDocument(t *testing.T) {
	r := newRig(t)
	p := NewProvider(r.verifier)
	if _, err := p.VerifyEvidence(context.Background(), &attestation.Evidence{
		Provider: "soft-tdx", Document: []byte("{}"),
	}); !errors.Is(err, attestation.ErrUnknownProvider) {
		t.Errorf("foreign tag: %v", err)
	}
	if _, err := p.VerifyEvidence(context.Background(), &attestation.Evidence{
		Provider: ProviderName, Document: []byte("not json"),
	}); !errors.Is(err, attestation.ErrEvidenceInvalid) {
		t.Errorf("garbage document: %v", err)
	}
	if _, err := p.VerifyEvidence(context.Background(), &attestation.Evidence{
		Provider: ProviderName, Document: []byte("{}"),
	}); !errors.Is(err, attestation.ErrEvidenceInvalid) {
		t.Errorf("empty document: %v", err)
	}
}

func TestRevisionPassThrough(t *testing.T) {
	r := newRig(t)
	p := NewProvider(r.verifier)
	before := p.PolicyRevision()
	p.InvalidatePolicy()
	if got := p.PolicyRevision(); got != before+1 {
		t.Errorf("revision = %d, want %d", got, before+1)
	}
	if p.Now().IsZero() {
		t.Error("Now() returned zero")
	}
	if err := p.CheckResult(&attestation.Result{Provider: ProviderName}); err == nil {
		t.Error("CheckResult accepted a result without a report")
	}
}

func TestSimulatorDemo(t *testing.T) {
	sim, err := NewSimulator([]byte("demo"))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sim.MintDemo([]byte("demo-chip"), 7)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TCB != 7 || len(ev.ReportRaw) == 0 {
		t.Errorf("demo evidence = %+v", ev)
	}
	server := httptest.NewServer(sim.Handler())
	t.Cleanup(server.Close)
	verifier := NewVerifier(NewKDSClient(server.URL, nil), NewStaticGolden(ev.Golden))
	res, err := verifier.VerifyRaw(context.Background(), ev.ReportRaw)
	if err != nil {
		t.Fatalf("demo report vs demo KDS: %v", err)
	}
	if res.Report.ChipID != ev.ChipID {
		t.Error("verified chip differs from demo chip")
	}
}
