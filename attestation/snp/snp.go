// Package snp is the SEV-SNP attestation provider of the public SDK: it
// adapts Revelio's hardware-backed verification plane — attestation
// reports signed by the chip's VCEK, authenticated against the AMD KDS
// — to the provider-neutral attestation interfaces, and re-exports the
// pieces a relying party composes (verifier, KDS client, trust
// policies) so no caller needs to reach into revelio/internal.
package snp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"revelio/attestation"
	"revelio/internal/attest"
	"revelio/internal/kds"
	"revelio/internal/measure"
	"revelio/internal/sev"
	"revelio/internal/vm"
)

// ProviderName tags SEV-SNP evidence in the neutral envelope.
const ProviderName = "sev-snp"

// Re-exported verification-plane types: the concrete SEV-SNP machinery
// under a public name. Aliases, not wrappers — a *snp.Verifier IS the
// internal verifier, so every internal layer (certmgr, ratls, webext)
// accepts it directly.
type (
	// Verifier validates SEV-SNP attestation reports end to end, with
	// the full fast path (proof caches, policy revisions).
	Verifier = attest.Verifier
	// Option configures a Verifier.
	Option = attest.Option
	// Result is a successfully verified report.
	Result = attest.Result
	// Bundle is the report-plus-payload unit shipped over HTTP.
	Bundle = attest.Bundle
	// TrustPolicy judges measurements (see attestation.TrustPolicy).
	TrustPolicy = attest.TrustPolicy
	// StaticGolden is a fixed set of golden measurements.
	StaticGolden = attest.StaticGolden
	// KDSClient fetches and caches certificates from a (simulated) AMD
	// key distribution server. It implements attestation.CertSource.
	KDSClient = kds.Client
	// KDSClientOption tunes a KDSClient.
	KDSClientOption = kds.ClientOption
	// Measurement is a launch measurement.
	Measurement = measure.Measurement
	// ReportData is the 64-byte user data field a report binds.
	ReportData = sev.ReportData
	// Report is a parsed SEV-SNP attestation report.
	Report = sev.Report
	// ChipID identifies a secure processor.
	ChipID = sev.ChipID
	// ReportSigner produces reports over caller-chosen REPORT_DATA —
	// what a VM (or guest channel) exposes inside the TEE.
	ReportSigner interface {
		Report(data ReportData) (*Report, error)
	}
)

// NewVerifier creates a verifier fetching certificates from source and
// judging measurements with policy.
func NewVerifier(source attestation.CertSource, policy TrustPolicy, opts ...Option) *Verifier {
	return attest.NewVerifier(source, policy, opts...)
}

// NewStaticGolden builds a fixed golden-measurement policy.
func NewStaticGolden(ms ...Measurement) StaticGolden { return attest.NewStaticGolden(ms...) }

// WithChipAllowList restricts acceptable chips.
func WithChipAllowList(ids ...ChipID) Option { return attest.WithChipAllowList(ids...) }

// WithMinTCB sets the platform firmware floor.
func WithMinTCB(tcb uint64) Option { return attest.WithMinTCB(tcb) }

// WithClock injects a test clock for validity checks.
func WithClock(now func() time.Time) Option { return attest.WithClock(now) }

// WithoutReportCache disables the verifier's proof caches.
func WithoutReportCache() Option { return attest.WithoutReportCache() }

// DecodeBundle parses a JSON report bundle.
func DecodeBundle(data []byte) (*Bundle, error) { return attest.DecodeBundle(data) }

// HashOf is the REPORT_DATA binding hash (SHA-512).
func HashOf(blob []byte) ReportData { return vm.HashOf(blob) }

// ParseMeasurement parses a hex measurement.
func ParseMeasurement(s string) (Measurement, error) { return measure.ParseMeasurement(s) }

// NewKDSClient creates a client for a KDS at base (nil httpClient
// selects http.DefaultClient). The returned client satisfies
// attestation.CertSource and is what NewVerifier runs on.
func NewKDSClient(base string, httpClient *http.Client, opts ...KDSClientOption) *KDSClient {
	return kds.NewClient(base, httpClient, opts...)
}

// quoteDoc is the JSON document inside an SEV-SNP evidence envelope:
// just the report bundle.
type quoteDoc struct {
	Bundle *attest.Bundle `json:"bundle"`
}

// Provider adapts the SEV-SNP verification plane to the neutral
// attestation.Provider contract. The verifier half wraps an
// *attest.Verifier (sharing its policy, caches and revision); the
// issuer half, when constructed with a ReportSigner, produces evidence
// from inside the TEE.
type Provider struct {
	verifier *attest.Verifier
	signer   ReportSigner // nil for a verify-only provider
}

var (
	_ attestation.Verifier     = (*Provider)(nil)
	_ attestation.Revisioned   = (*Provider)(nil)
	_ attestation.ResultPolicy = (*Provider)(nil)
)

// NewProvider creates a verify-only SEV-SNP provider over v. Use
// WithSigner (or NewNodeProvider) where evidence must also be issued.
func NewProvider(v *attest.Verifier) *Provider {
	return &Provider{verifier: v}
}

// NewNodeProvider creates a full provider: signer issues evidence from
// inside the TEE, v verifies it as a relying party.
func NewNodeProvider(signer ReportSigner, v *attest.Verifier) *Provider {
	return &Provider{verifier: v, signer: signer}
}

// Name implements attestation.Provider.
func (p *Provider) Name() string { return ProviderName }

// Verifier exposes the underlying SEV-SNP verifier.
func (p *Provider) Verifier() *attest.Verifier { return p.verifier }

// PolicyRevision implements attestation.Revisioned.
func (p *Provider) PolicyRevision() uint64 { return p.verifier.PolicyRevision() }

// Now implements attestation.Revisioned.
func (p *Provider) Now() time.Time { return p.verifier.Now() }

// InvalidatePolicy drops every cached proof below the provider.
func (p *Provider) InvalidatePolicy() { p.verifier.InvalidatePolicy() }

// Issue implements attestation.Issuer: a fresh report binding payload,
// wrapped in the neutral envelope.
func (p *Provider) Issue(_ context.Context, payload []byte) (*attestation.Evidence, error) {
	if p.signer == nil {
		return nil, fmt.Errorf("%w: snp: provider has no report signer (relying-party side)", errors.ErrUnsupported)
	}
	report, err := p.signer.Report(vm.HashOf(payload))
	if err != nil {
		return nil, fmt.Errorf("snp: obtain report: %w", err)
	}
	bundle, err := attest.NewBundle(report, payload)
	if err != nil {
		return nil, err
	}
	return EvidenceFromBundle(bundle)
}

// VerifyEvidence implements attestation.Verifier.
func (p *Provider) VerifyEvidence(ctx context.Context, ev *attestation.Evidence) (*attestation.Result, error) {
	if ev.Provider != ProviderName {
		return nil, fmt.Errorf("%w: %q evidence given to the %s provider",
			attestation.ErrUnknownProvider, ev.Provider, ProviderName)
	}
	var doc quoteDoc
	if err := json.Unmarshal(ev.Document, &doc); err != nil || doc.Bundle == nil {
		return nil, fmt.Errorf("%w: snp evidence document: %v", attestation.ErrEvidenceInvalid, err)
	}
	if ev.Payload != nil && string(ev.Payload) != string(doc.Bundle.Payload) {
		return nil, fmt.Errorf("%w: envelope payload disagrees with bundle", attestation.ErrBindingMismatch)
	}
	res, err := p.verifier.VerifyBundle(ctx, doc.Bundle, vm.HashOf)
	if err != nil {
		return nil, err
	}
	return &attestation.Result{
		Provider:    ProviderName,
		Measurement: res.Report.Measurement,
		TCB:         res.Report.TCBVersion,
		Expiry:      res.VCEK.NotAfter,
		Payload:     doc.Bundle.Payload,
		Details:     res.Report,
	}, nil
}

// CheckResult implements attestation.ResultPolicy: re-judge an
// already-proven report against current policy without cryptography.
func (p *Provider) CheckResult(res *attestation.Result) error {
	report, ok := res.Details.(*sev.Report)
	if !ok {
		return fmt.Errorf("%w: result carries no SEV-SNP report", attestation.ErrEvidenceInvalid)
	}
	return p.verifier.CheckPolicy(report)
}

// EvidenceFromBundle wraps an existing report bundle — e.g. one fetched
// from a node's well-known attestation endpoint — in the neutral
// evidence envelope, so legacy bundle producers feed provider-neutral
// consumers (a Mux, the neutral ratls path) unchanged.
func EvidenceFromBundle(b *attest.Bundle) (*attestation.Evidence, error) {
	doc, err := json.Marshal(quoteDoc{Bundle: b})
	if err != nil {
		return nil, fmt.Errorf("snp: encode evidence document: %w", err)
	}
	return &attestation.Evidence{Provider: ProviderName, Payload: b.Payload, Document: doc}, nil
}

// EvidenceFromBundleJSON wraps a JSON-encoded bundle (the well-known
// endpoint's wire format) in the neutral envelope.
func EvidenceFromBundleJSON(bundleJSON []byte) (*attestation.Evidence, error) {
	b, err := attest.DecodeBundle(bundleJSON)
	if err != nil {
		return nil, err
	}
	return EvidenceFromBundle(b)
}
