package snp

import (
	"fmt"
	"net/http"

	"revelio/internal/amdsp"
	"revelio/internal/kds"
	"revelio/internal/measure"
	"revelio/internal/sev"
)

// CertChainPath is the KDS endpoint serving the ASK/ARK chain (PEM).
const CertChainPath = kds.CertChainPath

// Simulator is a self-contained software AMD estate: a manufacturer key
// hierarchy with a KDS HTTP front end, able to mint chips and demo
// evidence. It is what revelio-kds serves and what tests or examples
// stand up when they need an SEV-SNP substrate without a Deployment.
type Simulator struct {
	mfr    *amdsp.Manufacturer
	server *kds.Server
}

// NewSimulator derives a manufacturer from seed and wires its KDS.
func NewSimulator(seed []byte) (*Simulator, error) {
	mfr, err := amdsp.NewManufacturer(seed)
	if err != nil {
		return nil, err
	}
	return &Simulator{mfr: mfr, server: kds.NewServer(mfr)}, nil
}

// Handler returns the KDS HTTP endpoint.
func (s *Simulator) Handler() http.Handler { return s.server }

// LaunchGuest mints a chip from chipSeed, launches a guest measured
// over blob, and returns the guest's report signer (the issuing side of
// the provider) together with its launch measurement — everything a
// test or demo needs to issue verifiable evidence without a full VM.
func (s *Simulator) LaunchGuest(chipSeed []byte, tcb uint64, blob []byte) (ReportSigner, Measurement, error) {
	chip, err := s.mfr.MintProcessor(chipSeed, tcb)
	if err != nil {
		return nil, Measurement{}, err
	}
	h := chip.LaunchStart(0x30000, 1)
	if err := chip.LaunchUpdate(h, measure.PageNormal, 0xFFC00000, blob, "guest"); err != nil {
		return nil, Measurement{}, err
	}
	golden, err := chip.LaunchFinish(h)
	if err != nil {
		return nil, Measurement{}, err
	}
	guest, err := chip.GuestChannel(h)
	if err != nil {
		return nil, Measurement{}, err
	}
	return guest, golden, nil
}

// DemoEvidence is a freshly minted chip plus a sample report — the crib
// sheet a verifier needs to exercise the KDS.
type DemoEvidence struct {
	ChipID    ChipID
	TCB       uint64
	Golden    Measurement
	ReportRaw []byte
}

// MintDemo mints a chip from chipSeed, launches a minimal measured
// guest, and returns a serialized sample report for it.
func (s *Simulator) MintDemo(chipSeed []byte, tcb uint64) (*DemoEvidence, error) {
	chip, err := s.mfr.MintProcessor(chipSeed, tcb)
	if err != nil {
		return nil, err
	}
	h := chip.LaunchStart(0x30000, 1)
	if err := chip.LaunchUpdate(h, measure.PageNormal, 0xFFC00000, []byte("demo firmware"), "ovmf"); err != nil {
		return nil, err
	}
	golden, err := chip.LaunchFinish(h)
	if err != nil {
		return nil, err
	}
	guest, err := chip.GuestChannel(h)
	if err != nil {
		return nil, err
	}
	report, err := guest.Report(sev.ReportData{})
	if err != nil {
		return nil, err
	}
	raw, err := report.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("snp: marshal demo report: %w", err)
	}
	return &DemoEvidence{
		ChipID:    chip.ChipID(),
		TCB:       chip.TCB(),
		Golden:    golden,
		ReportRaw: raw,
	}, nil
}
