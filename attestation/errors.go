package attestation

import (
	"errors"
	"fmt"
)

// The SDK's typed error taxonomy. Every failure mode in the
// verification plane — from the KDS client at the bottom to the
// revelio facade at the top — wraps exactly one of these sentinels, so
// callers branch with errors.Is/As instead of string matching, from any
// layer they happen to hold an error from.
//
// The taxonomy is a small tree:
//
//	ErrPolicyRejected            — authentic evidence, rejected by policy
//	  ├─ ErrUntrustedMeasurement — measurement is not a golden value
//	  ├─ ErrRevoked              — measurement was explicitly revoked
//	  ├─ ErrChipNotAllowed       — platform outside the allow-list
//	  └─ ErrTCBTooOld            — platform firmware below the floor
//	ErrEvidenceInvalid           — evidence that does not authenticate
//	  ├─ ErrChainInvalid         — certificate chain does not verify
//	  ├─ ErrIdentityMismatch     — evidence/platform identity disagree
//	  └─ ErrBindingMismatch      — evidence does not bind its payload
//	ErrEvidenceExpired           — evidence (or its chain) out of validity
//	ErrKDSUnavailable            — certificate source unreachable
//	ErrUnknownProvider           — no registered provider for evidence
//
// Interior nodes are reachable from their leaves: a revocation failure
// satisfies both errors.Is(err, ErrRevoked) and
// errors.Is(err, ErrPolicyRejected). A caller-initiated cancellation is
// deliberately *not* mapped into the taxonomy — context.Canceled and
// context.DeadlineExceeded surface wrapped but unclassified, because an
// aborted verification says nothing about the evidence.
var (
	// ErrPolicyRejected reports cryptographically valid evidence that the
	// verifier's policy refuses. It is the parent of every policy leaf.
	ErrPolicyRejected = errors.New("attestation: evidence rejected by policy")

	// ErrUntrustedMeasurement reports a measurement no trust policy
	// accepts (it was never a golden value).
	ErrUntrustedMeasurement = fmt.Errorf("%w: measurement not trusted", ErrPolicyRejected)

	// ErrRevoked reports a measurement that was a golden value and has
	// been explicitly revoked — the rollback defence distinguishing
	// "never trusted" from "no longer trusted".
	ErrRevoked = fmt.Errorf("%w: measurement revoked", ErrPolicyRejected)

	// ErrChipNotAllowed reports evidence from a platform outside the
	// verifier's allow-list (the SP node's impersonation defence).
	ErrChipNotAllowed = fmt.Errorf("%w: chip not in allow-list", ErrPolicyRejected)

	// ErrTCBTooOld reports a platform running firmware below the
	// verifier's floor — the firmware-level rollback defence.
	ErrTCBTooOld = fmt.Errorf("%w: platform TCB below required minimum", ErrPolicyRejected)

	// ErrEvidenceInvalid reports evidence that fails authentication:
	// malformed documents, broken signatures, certificate chains that do
	// not verify. It is the parent of the authenticity leaves.
	ErrEvidenceInvalid = errors.New("attestation: evidence invalid")

	// ErrChainInvalid reports an endorsement certificate that does not
	// chain to the provider's root of trust.
	ErrChainInvalid = fmt.Errorf("%w: certificate chain invalid", ErrEvidenceInvalid)

	// ErrIdentityMismatch reports evidence whose embedded platform
	// identity disagrees with its endorsement.
	ErrIdentityMismatch = fmt.Errorf("%w: platform identity mismatch", ErrEvidenceInvalid)

	// ErrBindingMismatch reports evidence that does not bind the payload
	// it claims to vouch for (REPORT_DATA/quote binding failure).
	ErrBindingMismatch = fmt.Errorf("%w: evidence does not bind payload", ErrEvidenceInvalid)

	// ErrEvidenceExpired reports evidence whose validity window — its own
	// or any certificate in its proving chain — has passed.
	ErrEvidenceExpired = errors.New("attestation: evidence expired")

	// ErrKDSUnavailable reports a certificate source (the AMD KDS, or
	// whatever CertSource the verifier runs on) that could not be
	// reached: transport failure or a non-2xx server response. Caller
	// cancellations are not wrapped in it.
	ErrKDSUnavailable = errors.New("attestation: certificate source unavailable")

	// ErrUnknownProvider reports evidence naming a provider no verifier
	// is registered for.
	ErrUnknownProvider = errors.New("attestation: unknown evidence provider")
)
