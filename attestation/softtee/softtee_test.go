package softtee

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"revelio/attestation"
	"revelio/internal/measure"
)

func testGolden() measure.Measurement {
	var m measure.Measurement
	m[0], m[1] = 0xAB, 0xCD
	return m
}

func newPair(t *testing.T, opts ...PlatformOption) (*Enclave, *Verifier, *Platform) {
	t.Helper()
	platform, err := NewPlatform([]byte("softtee-test"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	golden := testGolden()
	enclave := platform.Launch(golden)
	policy := map[measure.Measurement]struct{}{golden: {}}
	verifier := NewVerifier(platform.PublicKey(), staticPolicy(policy))
	return enclave, verifier, platform
}

type staticPolicy map[measure.Measurement]struct{}

func (p staticPolicy) IsTrusted(m measure.Measurement) bool { _, ok := p[m]; return ok }

func TestQuoteRoundTrip(t *testing.T) {
	enclave, verifier, platform := newPair(t, WithTCB(9))
	payload := []byte("bound key material")
	ev, err := enclave.Issue(context.Background(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Provider != ProviderName {
		t.Errorf("provider tag = %q", ev.Provider)
	}
	res, err := verifier.VerifyEvidence(context.Background(), ev)
	if err != nil {
		t.Fatalf("VerifyEvidence: %v", err)
	}
	if res.Measurement != testGolden() || res.TCB != 9 || res.Provider != ProviderName {
		t.Errorf("result = %+v", res)
	}
	if res.Expiry.IsZero() {
		t.Error("quote carries no expiry")
	}
	if platform.TCB() != 9 {
		t.Errorf("platform TCB = %d", platform.TCB())
	}
}

func TestDeterministicPlatformKey(t *testing.T) {
	a, err := NewPlatform([]byte("same-seed"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlatform([]byte("same-seed"))
	if err != nil {
		t.Fatal(err)
	}
	if !a.PublicKey().Equal(b.PublicKey()) {
		t.Error("same seed produced different platform keys")
	}
	c, err := NewPlatform([]byte("other-seed"))
	if err != nil {
		t.Fatal(err)
	}
	if a.PublicKey().Equal(c.PublicKey()) {
		t.Error("different seeds produced the same platform key")
	}
}

func TestForeignPlatformRejected(t *testing.T) {
	enclave, _, _ := newPair(t)
	foreign, err := NewPlatform([]byte("foreign"))
	if err != nil {
		t.Fatal(err)
	}
	verifier := NewVerifier(foreign.PublicKey(), staticPolicy{testGolden(): {}})
	ev, err := enclave.Issue(context.Background(), []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.VerifyEvidence(context.Background(), ev); !errors.Is(err, attestation.ErrChainInvalid) {
		t.Fatalf("foreign quote: %v, want ErrChainInvalid", err)
	}
}

func TestQuoteTamperingRejected(t *testing.T) {
	enclave, verifier, _ := newPair(t)
	ev, err := enclave.Issue(context.Background(), []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	var q map[string]any
	if err := json.Unmarshal(ev.Document, &q); err != nil {
		t.Fatal(err)
	}
	q["tcb"] = 99 // forge a better TCB
	doc, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	forged := *ev
	forged.Document = doc
	if _, err := verifier.VerifyEvidence(context.Background(), &forged); !errors.Is(err, attestation.ErrEvidenceInvalid) {
		t.Fatalf("forged quote: %v, want ErrEvidenceInvalid", err)
	}
}

func TestPayloadBinding(t *testing.T) {
	enclave, verifier, _ := newPair(t)
	ev, err := enclave.Issue(context.Background(), []byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	swapped := *ev
	swapped.Payload = []byte("swapped")
	if _, err := verifier.VerifyEvidence(context.Background(), &swapped); !errors.Is(err, attestation.ErrBindingMismatch) {
		t.Fatalf("swapped payload: %v, want ErrBindingMismatch", err)
	}
}

func TestQuoteExpiry(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	platform, err := NewPlatform([]byte("expiry"), WithPlatformClock(clock), WithQuoteValidity(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	enclave := platform.Launch(testGolden())
	verifier := NewVerifier(platform.PublicKey(), staticPolicy{testGolden(): {}},
		WithVerifierClock(func() time.Time { return now }))
	ev, err := enclave.Issue(context.Background(), []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.VerifyEvidence(context.Background(), ev); err != nil {
		t.Fatalf("fresh quote: %v", err)
	}
	now = now.Add(2 * time.Hour)
	if _, err := verifier.VerifyEvidence(context.Background(), ev); !errors.Is(err, attestation.ErrEvidenceExpired) {
		t.Fatalf("stale quote: %v, want ErrEvidenceExpired", err)
	}
}

func TestMinTCBFloor(t *testing.T) {
	platform, err := NewPlatform([]byte("tcb"), WithTCB(3))
	if err != nil {
		t.Fatal(err)
	}
	enclave := platform.Launch(testGolden())
	verifier := NewVerifier(platform.PublicKey(), staticPolicy{testGolden(): {}}, WithMinTCB(5))
	ev, err := enclave.Issue(context.Background(), []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.VerifyEvidence(context.Background(), ev); !errors.Is(err, attestation.ErrTCBTooOld) {
		t.Fatalf("low TCB: %v, want ErrTCBTooOld", err)
	}
}

func TestPolicyRevision(t *testing.T) {
	_, verifier, _ := newPair(t)
	before := verifier.PolicyRevision()
	verifier.InvalidatePolicy()
	if got := verifier.PolicyRevision(); got != before+1 {
		t.Errorf("revision = %d, want %d", got, before+1)
	}
	if verifier.Now().IsZero() {
		t.Error("Now returned zero time")
	}
}

func TestWrongProviderTag(t *testing.T) {
	enclave, verifier, _ := newPair(t)
	ev, err := enclave.Issue(context.Background(), []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	ev.Provider = "sev-snp"
	if _, err := verifier.VerifyEvidence(context.Background(), ev); !errors.Is(err, attestation.ErrUnknownProvider) {
		t.Fatalf("misrouted evidence: %v, want ErrUnknownProvider", err)
	}
}

func TestCancelledContexts(t *testing.T) {
	enclave, verifier, _ := newPair(t)
	ev, err := enclave.Issue(context.Background(), []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := enclave.Issue(dead, []byte("p")); !errors.Is(err, context.Canceled) {
		t.Errorf("Issue(dead): %v", err)
	}
	if _, err := verifier.VerifyEvidence(dead, ev); !errors.Is(err, context.Canceled) {
		t.Errorf("Verify(dead): %v", err)
	}
}

func TestProviderComposition(t *testing.T) {
	enclave, verifier, _ := newPair(t)
	p := NewProvider(enclave, verifier)
	if p.Name() != ProviderName {
		t.Errorf("Name() = %q", p.Name())
	}
	var iface attestation.Provider = p
	ev, err := iface.Issue(context.Background(), []byte("composed"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := iface.VerifyEvidence(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.CheckResult(res); err != nil {
		t.Errorf("CheckResult on fresh result: %v", err)
	}
	if string(res.Payload) != "composed" {
		t.Errorf("payload = %q", res.Payload)
	}
	if res.Measurement != enclave.Measurement() {
		t.Error("result measurement differs from enclave measurement")
	}
}
