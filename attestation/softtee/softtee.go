// Package softtee is the SDK's second attestation provider: an
// in-process software TEE in the style of Intel TDX's quote model. A
// Platform plays the role of the TDX module — it holds an ECDSA quoting
// key that is the deployment's root of trust — and launches Enclaves
// with a fixed launch measurement. An enclave issues quotes binding
// caller payloads (SHA-512, mirroring SEV-SNP's REPORT_DATA) with an
// explicit validity window; the Verifier authenticates quotes against
// the platform's public key and judges the measurement under the same
// attestation.TrustPolicy objects (static goldens, the trusted
// registry) that govern SEV-SNP fleets.
//
// The package exists to prove the provider abstraction: it passes the
// same conformance, ratls and fleet scenario suites as the hardware
// provider while sharing none of its machinery — different evidence
// format, different trust anchor, different expiry model.
package softtee

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha512"
	"encoding/json"
	"fmt"
	"math/big"
	"sync/atomic"
	"time"

	"revelio/attestation"
	"revelio/internal/kdf"
	"revelio/internal/measure"
)

// ProviderName tags software-TEE evidence in the neutral envelope.
const ProviderName = "soft-tdx"

// DefaultQuoteValidity bounds a quote's life when the platform does not
// override it: long enough for provisioning flows, short enough that a
// leaked quote goes stale.
const DefaultQuoteValidity = 24 * time.Hour

// quote is the signed evidence document. Signatures cover the
// deterministic JSON encoding of the quote with Sig nilled.
type quote struct {
	Measurement measure.Measurement `json:"measurement"`
	ReportData  [64]byte            `json:"reportData"` // SHA-512 of the bound payload
	TCB         uint64              `json:"tcb"`
	IssuedAt    time.Time           `json:"issuedAt"`
	NotAfter    time.Time           `json:"notAfter"`
	SigR        []byte              `json:"sigR,omitempty"`
	SigS        []byte              `json:"sigS,omitempty"`
}

func (q *quote) signingBytes() ([]byte, error) {
	unsigned := *q
	unsigned.SigR, unsigned.SigS = nil, nil
	raw, err := json.Marshal(&unsigned)
	if err != nil {
		return nil, err
	}
	sum := sha512.Sum512(raw)
	return sum[:], nil
}

// Platform is the software TEE's hardware root of trust: the quoting
// key every enclave launched on it signs with.
type Platform struct {
	key      *ecdsa.PrivateKey
	tcb      uint64
	validity time.Duration
	now      func() time.Time
}

// PlatformOption tunes a Platform.
type PlatformOption func(*Platform)

// WithTCB sets the platform's reported TCB version (default 1).
func WithTCB(tcb uint64) PlatformOption { return func(p *Platform) { p.tcb = tcb } }

// WithQuoteValidity sets how long issued quotes stay valid.
func WithQuoteValidity(d time.Duration) PlatformOption {
	return func(p *Platform) { p.validity = d }
}

// WithPlatformClock injects a test clock for quote timestamps.
func WithPlatformClock(now func() time.Time) PlatformOption {
	return func(p *Platform) { p.now = now }
}

// NewPlatform derives a platform deterministically from seed (so tests
// and demos are reproducible, mirroring the amdsp manufacturer).
func NewPlatform(seed []byte, opts ...PlatformOption) (*Platform, error) {
	key, err := deriveKey(seed)
	if err != nil {
		return nil, fmt.Errorf("softtee: derive platform key: %w", err)
	}
	p := &Platform{key: key, tcb: 1, validity: DefaultQuoteValidity, now: time.Now}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// deriveKey deterministically derives the platform's P-256 quoting key
// from seed via HKDF (ecdsa.GenerateKey deliberately defeats
// deterministic readers, so the scalar is computed directly — the tiny
// mod bias is irrelevant for a simulator).
func deriveKey(seed []byte) (*ecdsa.PrivateKey, error) {
	curve := elliptic.P256()
	params := curve.Params()
	okm, err := kdf.Derive(sha512.New, seed, []byte("softtee"), []byte("softtee-platform-key"), 40)
	if err != nil {
		return nil, err
	}
	d := new(big.Int).SetBytes(okm)
	d.Mod(d, new(big.Int).Sub(params.N, big.NewInt(1)))
	d.Add(d, big.NewInt(1))
	priv := &ecdsa.PrivateKey{D: d}
	priv.PublicKey.Curve = curve
	priv.PublicKey.X, priv.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
	return priv, nil
}

// PublicKey returns the platform's quote-verification key — what a
// relying party pins as the trust anchor.
func (p *Platform) PublicKey() *ecdsa.PublicKey { return &p.key.PublicKey }

// TCB returns the platform's reported TCB version.
func (p *Platform) TCB() uint64 { return p.tcb }

// Launch starts an enclave with the given launch measurement.
func (p *Platform) Launch(m measure.Measurement) *Enclave {
	return &Enclave{platform: p, measurement: m}
}

// Enclave is a launched software TEE: the issuing half of the provider.
type Enclave struct {
	platform    *Platform
	measurement measure.Measurement
}

var _ attestation.Issuer = (*Enclave)(nil)

// Measurement returns the enclave's launch measurement.
func (e *Enclave) Measurement() measure.Measurement { return e.measurement }

// Issue implements attestation.Issuer: a signed quote binding
// SHA-512(payload), valid for the platform's quote validity window.
func (e *Enclave) Issue(ctx context.Context, payload []byte) (*attestation.Evidence, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("softtee: issue quote: %w", err)
	}
	now := e.platform.now()
	q := quote{
		Measurement: e.measurement,
		ReportData:  sha512.Sum512(payload),
		TCB:         e.platform.tcb,
		IssuedAt:    now,
		NotAfter:    now.Add(e.platform.validity),
	}
	digest, err := q.signingBytes()
	if err != nil {
		return nil, fmt.Errorf("softtee: encode quote: %w", err)
	}
	r, s, err := ecdsa.Sign(rand.Reader, e.platform.key, digest)
	if err != nil {
		return nil, fmt.Errorf("softtee: sign quote: %w", err)
	}
	q.SigR, q.SigS = r.Bytes(), s.Bytes()
	doc, err := json.Marshal(&q)
	if err != nil {
		return nil, fmt.Errorf("softtee: encode quote: %w", err)
	}
	return &attestation.Evidence{Provider: ProviderName, Payload: payload, Document: doc}, nil
}

// Verifier authenticates software-TEE quotes against a platform trust
// anchor and judges their measurements under a TrustPolicy. It carries
// the same policy-revision fencing as the SEV-SNP verifier so the ratls
// fast path and TLS session caches fail closed on InvalidatePolicy.
type Verifier struct {
	anchor *ecdsa.PublicKey
	policy attestation.TrustPolicy
	minTCB uint64
	now    func() time.Time
	rev    atomic.Uint64
}

var (
	_ attestation.Verifier     = (*Verifier)(nil)
	_ attestation.Revisioned   = (*Verifier)(nil)
	_ attestation.ResultPolicy = (*Verifier)(nil)
)

// VerifierOption tunes a Verifier.
type VerifierOption func(*Verifier)

// WithVerifierClock injects a test clock for expiry judgments.
func WithVerifierClock(now func() time.Time) VerifierOption {
	return func(v *Verifier) { v.now = now }
}

// WithMinTCB sets a floor on the platform TCB version.
func WithMinTCB(tcb uint64) VerifierOption { return func(v *Verifier) { v.minTCB = tcb } }

// NewVerifier creates a verifier trusting quotes signed by anchor and
// judging measurements with policy (nil trusts every measurement —
// gate that choice deliberately).
func NewVerifier(anchor *ecdsa.PublicKey, policy attestation.TrustPolicy, opts ...VerifierOption) *Verifier {
	v := &Verifier{anchor: anchor, policy: policy, now: time.Now}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Name identifies the provider.
func (v *Verifier) Name() string { return ProviderName }

// PolicyRevision implements attestation.Revisioned.
func (v *Verifier) PolicyRevision() uint64 { return v.rev.Load() }

// Now implements attestation.Revisioned.
func (v *Verifier) Now() time.Time { return v.now() }

// InvalidatePolicy bumps the policy revision; caches stacked above the
// verifier (ratls memos, session caches) drop their entries.
func (v *Verifier) InvalidatePolicy() { v.rev.Add(1) }

// VerifyEvidence implements attestation.Verifier.
func (v *Verifier) VerifyEvidence(ctx context.Context, ev *attestation.Evidence) (*attestation.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("softtee: verify: %w", err)
	}
	if ev.Provider != ProviderName {
		return nil, fmt.Errorf("%w: %q evidence given to the %s provider",
			attestation.ErrUnknownProvider, ev.Provider, ProviderName)
	}
	var q quote
	if err := json.Unmarshal(ev.Document, &q); err != nil {
		return nil, fmt.Errorf("%w: softtee quote: %v", attestation.ErrEvidenceInvalid, err)
	}
	digest, err := q.signingBytes()
	if err != nil {
		return nil, fmt.Errorf("%w: softtee quote: %v", attestation.ErrEvidenceInvalid, err)
	}
	r := new(big.Int).SetBytes(q.SigR)
	s := new(big.Int).SetBytes(q.SigS)
	if !ecdsa.Verify(v.anchor, digest, r, s) {
		return nil, fmt.Errorf("%w: quote signature does not verify", attestation.ErrChainInvalid)
	}
	if q.ReportData != sha512.Sum512(ev.Payload) {
		return nil, fmt.Errorf("%w: quote does not bind payload", attestation.ErrBindingMismatch)
	}
	now := v.now()
	if now.After(q.NotAfter) {
		return nil, fmt.Errorf("%w: quote expired %s", attestation.ErrEvidenceExpired, q.NotAfter.Format(time.RFC3339))
	}
	res := &attestation.Result{
		Provider:    ProviderName,
		Measurement: q.Measurement,
		TCB:         q.TCB,
		Expiry:      q.NotAfter,
		Payload:     ev.Payload,
		Details:     &q,
	}
	if err := v.CheckResult(res); err != nil {
		return nil, err
	}
	return res, nil
}

// CheckResult implements attestation.ResultPolicy: the pure policy
// judgment (TCB floor, measurement trust, expiry under the verifier's
// clock), re-run on every fast-path hit.
func (v *Verifier) CheckResult(res *attestation.Result) error {
	if res.TCB < v.minTCB {
		return fmt.Errorf("%w: have %d, need %d", attestation.ErrTCBTooOld, res.TCB, v.minTCB)
	}
	if !res.Expiry.IsZero() && v.now().After(res.Expiry) {
		return fmt.Errorf("%w: quote expired %s", attestation.ErrEvidenceExpired, res.Expiry.Format(time.RFC3339))
	}
	return attestation.JudgeMeasurement(v.policy, res.Measurement)
}

// Provider bundles an enclave (issuer) and verifier into one
// attestation.Provider — the shape the Mux registers.
type Provider struct {
	*Enclave
	*Verifier
}

var _ attestation.Provider = Provider{}

// NewProvider pairs an enclave with a verifier.
func NewProvider(e *Enclave, v *Verifier) Provider { return Provider{Enclave: e, Verifier: v} }

// Name identifies the provider (disambiguates the embedded pair).
func (Provider) Name() string { return ProviderName }
