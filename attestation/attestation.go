// Package attestation is the provider-neutral core of Revelio's public
// SDK: the interfaces and error taxonomy every attestation provider —
// hardware-backed SEV-SNP (attestation/snp) or the in-process software
// TEE (attestation/softtee) — plugs into, and the Mux that lets one
// relying party verify evidence from a mixed-provider fleet.
//
// The package is a deliberate leaf: it defines vocabulary (Evidence,
// Result, Issuer, Verifier, Provider, CertSource, TrustPolicy) and the
// typed error taxonomy, but carries no provider logic, so every layer of
// the system — including the internal verification plane — can import it
// without cycles.
package attestation

import (
	"context"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"time"

	"revelio/internal/measure"
	"revelio/internal/sev"
)

// Evidence is the provider-tagged unit of attestation the SDK ships
// between issuers and verifiers: an opaque provider-specific document
// (an SEV-SNP report bundle, a software-TEE quote, ...) plus the payload
// it vouches for. The Provider tag routes the evidence through a Mux to
// the verifier that understands the document.
type Evidence struct {
	// Provider names the provider that issued the document (e.g.
	// "sev-snp", "soft-tdx").
	Provider string `json:"provider"`
	// Payload is the application data the evidence binds — typically a
	// DER public key whose hash the provider embedded in the document.
	Payload []byte `json:"payload,omitempty"`
	// Document is the provider-specific evidence, JSON-encoded.
	Document json.RawMessage `json:"document"`
}

// Encode renders the evidence as JSON for transport.
func (e *Evidence) Encode() ([]byte, error) {
	out, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("attestation: encode evidence: %w", err)
	}
	return out, nil
}

// DecodeEvidence parses a JSON evidence envelope.
func DecodeEvidence(data []byte) (*Evidence, error) {
	var e Evidence
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("%w: decode evidence: %v", ErrEvidenceInvalid, err)
	}
	if e.Provider == "" {
		return nil, fmt.Errorf("%w: evidence names no provider", ErrEvidenceInvalid)
	}
	return &e, nil
}

// Result is a successfully verified piece of evidence, in
// provider-neutral terms.
type Result struct {
	// Provider is the verifying provider's name.
	Provider string
	// Measurement is the attested launch measurement the policy judged.
	Measurement measure.Measurement
	// TCB is the platform's trusted-computing-base version, where the
	// provider has one (zero otherwise).
	TCB uint64
	// Expiry is when the proof stops being valid (the earliest NotAfter
	// of the proving chain); zero when the provider does not bound it.
	Expiry time.Time
	// Payload is the application data the evidence bound.
	Payload []byte
	// Details carries the provider-specific verification artifact (e.g.
	// *sev.Report for SEV-SNP) for callers that need to reach below the
	// neutral surface.
	Details any
}

// Issuer produces evidence binding a caller-chosen payload — the
// TEE-side half of a provider.
type Issuer interface {
	// Issue returns evidence whose document binds payload (typically via
	// a hash planted in the signed document).
	Issue(ctx context.Context, payload []byte) (*Evidence, error)
}

// Verifier judges evidence — the relying-party half of a provider.
// Implementations map every failure onto the package's error taxonomy.
type Verifier interface {
	// VerifyEvidence authenticates the evidence document, checks that it
	// binds ev.Payload, and judges it against the verifier's policy.
	VerifyEvidence(ctx context.Context, ev *Evidence) (*Result, error)
}

// Provider is a complete attestation provider: it can issue evidence
// (inside the TEE) and verify it (as a relying party), under a stable
// name the Mux routes on.
type Provider interface {
	// Name identifies the provider (the Evidence.Provider tag it stamps
	// and answers to).
	Name() string
	Issuer
	Verifier
}

// Revisioned is the optional fast-path capability a Verifier exposes so
// layers stacked above it (ratls peer memos, TLS session caches) can
// fence their caches on policy changes: InvalidatePolicy bumps the
// revision, and cached judgments keyed on an older revision are dead.
type Revisioned interface {
	// PolicyRevision returns the current policy revision.
	PolicyRevision() uint64
	// Now returns the verifier's notion of current time (an injected
	// test clock, or the wall clock) so caches expire consistently.
	Now() time.Time
}

// ResultPolicy is the optional capability to re-judge an
// already-authenticated Result against current policy without redoing
// cryptography. Fast-path caches call it on every hit so revocations
// bite immediately even for memoized proofs.
type ResultPolicy interface {
	// CheckResult re-runs the policy judgment on a previously verified
	// result, returning a taxonomy error if it no longer passes.
	CheckResult(res *Result) error
}

// TrustPolicy decides whether a measurement is a golden value. The
// trusted registry and static golden sets implement it; it is shared by
// every provider so one policy object can govern a mixed fleet.
type TrustPolicy interface {
	IsTrusted(m measure.Measurement) bool
}

// RevocationChecker is the optional refinement a TrustPolicy implements
// when it can distinguish "never trusted" from "explicitly revoked" —
// verifiers use it to map failures onto ErrRevoked instead of
// ErrUntrustedMeasurement.
type RevocationChecker interface {
	IsRevoked(m measure.Measurement) bool
}

// JudgeMeasurement maps a measurement's standing under policy onto the
// taxonomy: nil when trusted, ErrRevoked when the policy can prove
// revocation, ErrUntrustedMeasurement otherwise. A nil policy trusts
// everything (callers gate that choice).
func JudgeMeasurement(policy TrustPolicy, m measure.Measurement) error {
	if policy == nil || policy.IsTrusted(m) {
		return nil
	}
	if rc, ok := policy.(RevocationChecker); ok && rc.IsRevoked(m) {
		return fmt.Errorf("%w: %s", ErrRevoked, m)
	}
	return fmt.Errorf("%w: %s", ErrUntrustedMeasurement, m)
}

// CertSource supplies the certificates that authenticate SEV-SNP
// evidence: the VCEK for a chip/TCB pair and the ASK/ARK chain above
// it. It is the seam that decouples the verification plane from a
// concrete KDS client — an HTTP client against the (simulated) AMD KDS,
// a pre-fetched offline bundle, or a test double all satisfy it.
type CertSource interface {
	// VCEK returns the VCEK certificate for a chip at a TCB version.
	VCEK(ctx context.Context, chipID sev.ChipID, tcb uint64) (*x509.Certificate, error)
	// CertChain returns the ASK (intermediate) and ARK (root)
	// certificates, in that order.
	CertChain(ctx context.Context) (ask, ark *x509.Certificate, err error)
}
