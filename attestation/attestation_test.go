package attestation

import (
	"context"
	"errors"
	"testing"

	"revelio/internal/measure"
)

// TestTaxonomyHierarchy pins the errors.Is tree: every leaf must reach
// its parent, and siblings must stay distinct.
func TestTaxonomyHierarchy(t *testing.T) {
	policyLeaves := []error{ErrUntrustedMeasurement, ErrRevoked, ErrChipNotAllowed, ErrTCBTooOld}
	for _, leaf := range policyLeaves {
		if !errors.Is(leaf, ErrPolicyRejected) {
			t.Errorf("%v does not reach ErrPolicyRejected", leaf)
		}
		if errors.Is(leaf, ErrEvidenceInvalid) {
			t.Errorf("%v wrongly reaches ErrEvidenceInvalid", leaf)
		}
	}
	invalidLeaves := []error{ErrChainInvalid, ErrIdentityMismatch, ErrBindingMismatch}
	for _, leaf := range invalidLeaves {
		if !errors.Is(leaf, ErrEvidenceInvalid) {
			t.Errorf("%v does not reach ErrEvidenceInvalid", leaf)
		}
		if errors.Is(leaf, ErrPolicyRejected) {
			t.Errorf("%v wrongly reaches ErrPolicyRejected", leaf)
		}
	}
	if errors.Is(ErrRevoked, ErrUntrustedMeasurement) {
		t.Error("ErrRevoked must stay distinct from ErrUntrustedMeasurement")
	}
	for _, standalone := range []error{ErrEvidenceExpired, ErrKDSUnavailable, ErrUnknownProvider} {
		if errors.Is(standalone, ErrPolicyRejected) || errors.Is(standalone, ErrEvidenceInvalid) {
			t.Errorf("%v must not hang off an interior node", standalone)
		}
	}
}

type staticPolicy map[measure.Measurement]bool // true = trusted, false = revoked

func (p staticPolicy) IsTrusted(m measure.Measurement) bool { return p[m] }
func (p staticPolicy) IsRevoked(m measure.Measurement) bool {
	trusted, known := p[m]
	return known && !trusted
}

func TestJudgeMeasurement(t *testing.T) {
	var trusted, revoked, unknown measure.Measurement
	trusted[0], revoked[0], unknown[0] = 1, 2, 3
	policy := staticPolicy{trusted: true, revoked: false}

	if err := JudgeMeasurement(policy, trusted); err != nil {
		t.Fatalf("trusted measurement judged: %v", err)
	}
	if err := JudgeMeasurement(policy, revoked); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked measurement: got %v, want ErrRevoked", err)
	}
	if err := JudgeMeasurement(policy, unknown); !errors.Is(err, ErrUntrustedMeasurement) {
		t.Fatalf("unknown measurement: got %v, want ErrUntrustedMeasurement", err)
	}
	if err := JudgeMeasurement(nil, unknown); err != nil {
		t.Fatalf("nil policy must trust everything, got %v", err)
	}
}

type fakeVerifier struct {
	name string
	err  error
}

func (f *fakeVerifier) VerifyEvidence(_ context.Context, ev *Evidence) (*Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	return &Result{Provider: f.name, Payload: ev.Payload}, nil
}

func TestMuxDispatch(t *testing.T) {
	mux := NewMux()
	mux.Register("alpha", &fakeVerifier{name: "alpha"})
	mux.Register("beta", &fakeVerifier{name: "beta", err: ErrUntrustedMeasurement})

	res, err := mux.VerifyEvidence(context.Background(), &Evidence{Provider: "alpha", Document: []byte("{}")})
	if err != nil || res.Provider != "alpha" {
		t.Fatalf("alpha dispatch: res=%v err=%v", res, err)
	}
	if _, err := mux.VerifyEvidence(context.Background(), &Evidence{Provider: "beta", Document: []byte("{}")}); !errors.Is(err, ErrPolicyRejected) {
		t.Fatalf("beta dispatch: got %v, want policy rejection", err)
	}
	if _, err := mux.VerifyEvidence(context.Background(), &Evidence{Provider: "gamma"}); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("unknown provider: got %v, want ErrUnknownProvider", err)
	}
	mux.Deregister("alpha")
	if _, err := mux.VerifyEvidence(context.Background(), &Evidence{Provider: "alpha"}); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("deregistered provider must fail closed, got %v", err)
	}
	if got := mux.Providers(); len(got) != 1 || got[0] != "beta" {
		t.Fatalf("Providers() = %v, want [beta]", got)
	}
}

func TestEvidenceRoundTrip(t *testing.T) {
	ev := &Evidence{Provider: "alpha", Payload: []byte("pub"), Document: []byte(`{"q":1}`)}
	raw, err := ev.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEvidence(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Provider != ev.Provider || string(back.Payload) != "pub" || string(back.Document) != `{"q":1}` {
		t.Fatalf("round trip mutated evidence: %+v", back)
	}
	if _, err := DecodeEvidence([]byte(`{"document":{}}`)); !errors.Is(err, ErrEvidenceInvalid) {
		t.Fatalf("provider-less evidence: got %v, want ErrEvidenceInvalid", err)
	}
	if _, err := DecodeEvidence([]byte("not json")); !errors.Is(err, ErrEvidenceInvalid) {
		t.Fatalf("garbage evidence: got %v, want ErrEvidenceInvalid", err)
	}
}
