package attestation

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Mux routes evidence to the verifier registered for its provider tag —
// the one relying-party object a mixed-provider deployment needs. It
// implements Verifier itself, so anything built over a single verifier
// (the ratls peer callbacks, the fleet engine, the web extension flow)
// transparently accepts evidence from every registered provider.
//
// Registration is keyed by name; policies stay per-provider, which is
// what lets an operator revoke an SEV-SNP golden value without touching
// the software-TEE workloads sharing the fleet (and vice versa).
type Mux struct {
	mu        sync.RWMutex
	verifiers map[string]Verifier
}

var _ Verifier = (*Mux)(nil)

// NewMux creates an empty provider mux.
func NewMux() *Mux {
	return &Mux{verifiers: make(map[string]Verifier)}
}

// Register installs v as the verifier for evidence tagged name,
// replacing any previous registration.
func (m *Mux) Register(name string, v Verifier) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.verifiers[name] = v
}

// RegisterProvider installs a full provider under its own name.
func (m *Mux) RegisterProvider(p Provider) { m.Register(p.Name(), p) }

// Deregister removes the verifier for name; evidence tagged with it
// fails closed with ErrUnknownProvider afterwards.
func (m *Mux) Deregister(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.verifiers, name)
}

// Providers returns the registered provider names, sorted.
func (m *Mux) Providers() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.verifiers))
	for name := range m.verifiers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Verifier returns the verifier registered for name, if any.
func (m *Mux) Verifier(name string) (Verifier, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.verifiers[name]
	return v, ok
}

// VerifyEvidence dispatches the evidence to its provider's verifier.
// Unknown providers fail closed with ErrUnknownProvider.
func (m *Mux) VerifyEvidence(ctx context.Context, ev *Evidence) (*Result, error) {
	if ev == nil {
		return nil, fmt.Errorf("%w: nil evidence", ErrEvidenceInvalid)
	}
	v, ok := m.Verifier(ev.Provider)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProvider, ev.Provider)
	}
	return v.VerifyEvidence(ctx, ev)
}

// CheckResult re-judges a result through its provider's verifier when
// that verifier exposes ResultPolicy; providers without the capability
// re-verify from scratch on their next full judgment instead.
func (m *Mux) CheckResult(res *Result) error {
	if res == nil {
		return fmt.Errorf("%w: nil result", ErrEvidenceInvalid)
	}
	v, ok := m.Verifier(res.Provider)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownProvider, res.Provider)
	}
	if rp, ok := v.(ResultPolicy); ok {
		return rp.CheckResult(res)
	}
	return nil
}
