// Provider conformance: every attestation provider — the hardware
// SEV-SNP plane and the software TEE — must behave identically through
// the neutral interfaces: issue/verify round trips, payload-binding and
// tamper failures, expiry, policy judgments (untrusted / revoked / TCB
// floor), policy-revision fencing, and the provider-neutral RA-TLS
// handshake, alone and behind a Mux.
package attestation_test

import (
	"context"
	"crypto/tls"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"revelio/attestation"
	"revelio/attestation/snp"
	"revelio/attestation/softtee"
	"revelio/internal/measure"
	"revelio/internal/ratls"
	"revelio/internal/registry"
)

// harness is one provider under test, with the hooks the suite needs.
type harness struct {
	name     string
	provider attestation.Provider
	golden   measure.Measurement
	registry *registry.Registry // the live policy behind the provider
	// advance jumps the provider's clocks past every validity window.
	advance func(d time.Duration)
	// invalidate bumps the provider's policy revision.
	invalidate func()
	// freshIssuer returns an issuer with an untrusted measurement.
	freshIssuer func(t *testing.T) attestation.Issuer
}

// testClock is a mutable clock shared by a harness's components.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Now()} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newRegistryPolicy(t *testing.T, golden measure.Measurement) *registry.Registry {
	t.Helper()
	reg := registry.New(1)
	reg.AddVoter("operator")
	if err := reg.Propose(golden, "conformance golden"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Vote("operator", golden); err != nil {
		t.Fatal(err)
	}
	return reg
}

func newSNPHarness(t *testing.T) *harness {
	t.Helper()
	clock := newTestClock()
	sim, err := snp.NewSimulator([]byte("conformance-snp"))
	if err != nil {
		t.Fatal(err)
	}
	kdsSrv := httptest.NewServer(sim.Handler())
	t.Cleanup(kdsSrv.Close)
	signer, golden, err := sim.LaunchGuest([]byte("chip-0"), 7, []byte("conformance guest"))
	if err != nil {
		t.Fatal(err)
	}
	reg := newRegistryPolicy(t, golden)
	client := snp.NewKDSClient(kdsSrv.URL, nil)
	verifier := snp.NewVerifier(client, reg, snp.WithClock(clock.Now))
	provider := snp.NewNodeProvider(signer, verifier)
	return &harness{
		name:       "sev-snp",
		provider:   provider,
		golden:     golden,
		registry:   reg,
		advance:    clock.Advance,
		invalidate: verifier.InvalidatePolicy,
		freshIssuer: func(t *testing.T) attestation.Issuer {
			t.Helper()
			rogue, _, err := sim.LaunchGuest([]byte("chip-rogue"), 7, []byte("unaudited guest"))
			if err != nil {
				t.Fatal(err)
			}
			return snp.NewNodeProvider(rogue, verifier)
		},
	}
}

func newSoftTEEHarness(t *testing.T) *harness {
	t.Helper()
	clock := newTestClock()
	platform, err := softtee.NewPlatform([]byte("conformance-soft"),
		softtee.WithTCB(7), softtee.WithPlatformClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	var golden measure.Measurement
	golden[0], golden[1] = 0x50, 0x42
	enclave := platform.Launch(golden)
	reg := newRegistryPolicy(t, golden)
	verifier := softtee.NewVerifier(platform.PublicKey(), reg, softtee.WithVerifierClock(clock.Now))
	return &harness{
		name:       "soft-tdx",
		provider:   softtee.NewProvider(enclave, verifier),
		golden:     golden,
		registry:   reg,
		advance:    clock.Advance,
		invalidate: verifier.InvalidatePolicy,
		freshIssuer: func(t *testing.T) attestation.Issuer {
			var rogue measure.Measurement
			rogue[0] = 0xBB
			return platform.Launch(rogue)
		},
	}
}

func harnesses(t *testing.T) []*harness {
	t.Helper()
	return []*harness{newSNPHarness(t), newSoftTEEHarness(t)}
}

func TestProviderConformance(t *testing.T) {
	for _, h := range harnesses(t) {
		h := h
		t.Run(h.name, func(t *testing.T) {
			ctx := context.Background()
			payload := []byte("bound application payload")

			// Round trip, including the JSON envelope.
			ev, err := h.provider.Issue(ctx, payload)
			if err != nil {
				t.Fatalf("Issue: %v", err)
			}
			if ev.Provider != h.provider.Name() {
				t.Fatalf("evidence tagged %q, want %q", ev.Provider, h.provider.Name())
			}
			wire, err := ev.Encode()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := attestation.DecodeEvidence(wire)
			if err != nil {
				t.Fatal(err)
			}
			res, err := h.provider.VerifyEvidence(ctx, decoded)
			if err != nil {
				t.Fatalf("VerifyEvidence: %v", err)
			}
			if res.Measurement != h.golden {
				t.Errorf("result measurement = %s, want golden", res.Measurement)
			}
			if res.Provider != h.provider.Name() {
				t.Errorf("result provider = %q", res.Provider)
			}

			// Payload substitution must fail the binding.
			swapped := *decoded
			swapped.Payload = []byte("some other payload")
			if _, err := h.provider.VerifyEvidence(ctx, &swapped); !errors.Is(err, attestation.ErrEvidenceInvalid) {
				t.Errorf("swapped payload: %v, want ErrEvidenceInvalid", err)
			}

			// Document tampering must fail authentication.
			tampered := *decoded
			doc := append([]byte(nil), decoded.Document...)
			for i, c := range doc {
				if c == ':' { // corrupt a value byte past the first key
					doc[i+1] ^= 0x01
					break
				}
			}
			tampered.Document = doc
			if _, err := h.provider.VerifyEvidence(ctx, &tampered); err == nil {
				t.Error("tampered document verified")
			}

			// Wrong provider tag must not be judged by this verifier.
			misrouted := *decoded
			misrouted.Provider = "someone-else"
			if _, err := h.provider.VerifyEvidence(ctx, &misrouted); !errors.Is(err, attestation.ErrUnknownProvider) {
				t.Errorf("misrouted evidence: %v, want ErrUnknownProvider", err)
			}

			// Revocation → ErrRevoked (and the ErrPolicyRejected parent).
			if err := h.registry.Revoke(h.golden); err != nil {
				t.Fatal(err)
			}
			h.invalidate()
			if _, err := h.provider.VerifyEvidence(ctx, decoded); !errors.Is(err, attestation.ErrRevoked) {
				t.Errorf("revoked golden: %v, want ErrRevoked", err)
			} else if !errors.Is(err, attestation.ErrPolicyRejected) {
				t.Errorf("ErrRevoked must reach ErrPolicyRejected: %v", err)
			}

			// Untrusted (never-audited) measurement → ErrUntrustedMeasurement.
			rogueEv, err := h.freshIssuer(t).Issue(ctx, payload)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.provider.VerifyEvidence(ctx, rogueEv); !errors.Is(err, attestation.ErrUntrustedMeasurement) {
				t.Errorf("rogue measurement: %v, want ErrUntrustedMeasurement", err)
			}

			// Expiry: re-trust the golden? Revocation is permanent, so mint
			// fresh evidence is still revoked — expiry must win the race by
			// being judged first or at least be reachable on a trusted
			// harness. Use a fresh harness to keep the judgment clean.
		})
	}
}

func TestProviderExpiry(t *testing.T) {
	for _, h := range harnesses(t) {
		h := h
		t.Run(h.name, func(t *testing.T) {
			ctx := context.Background()
			ev, err := h.provider.Issue(ctx, []byte("payload"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.provider.VerifyEvidence(ctx, ev); err != nil {
				t.Fatalf("fresh evidence: %v", err)
			}
			// Jump far past every validity window (VCEK NotAfter, quote
			// NotAfter).
			h.advance(30 * 365 * 24 * time.Hour)
			if _, err := h.provider.VerifyEvidence(ctx, ev); !errors.Is(err, attestation.ErrEvidenceExpired) {
				t.Errorf("expired evidence: %v, want ErrEvidenceExpired", err)
			}
		})
	}
}

// TestProviderCancellation: a dead context surfaces as the context
// error, never reclassified into the taxonomy.
func TestProviderCancellation(t *testing.T) {
	for _, h := range harnesses(t) {
		h := h
		t.Run(h.name, func(t *testing.T) {
			ev, err := h.provider.Issue(context.Background(), []byte("payload"))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err = h.provider.VerifyEvidence(ctx, ev)
			if err == nil {
				t.Skip("verification completed without touching the context (fully cached)")
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled verify: %v, want context.Canceled", err)
			}
			if errors.Is(err, attestation.ErrKDSUnavailable) {
				t.Errorf("cancellation misclassified as KDS outage: %v", err)
			}
		})
	}
}

// TestProviderRATLS runs the provider-neutral RA-TLS handshake for each
// provider, and through a Mux registered with both — the mixed-provider
// fleet's transport path. Each combination gets a fresh harness pair,
// because the scenario ends in a permanent revocation.
func TestProviderRATLS(t *testing.T) {
	for _, mode := range []string{"direct", "mux"} {
		for which := 0; which < 2; which++ {
			mode, which := mode, which
			hs := harnesses(t)
			h := hs[which]
			var v attestation.Verifier = h.provider
			if mode == "mux" {
				mux := attestation.NewMux()
				for _, hh := range hs {
					mux.RegisterProvider(hh.provider)
				}
				v = mux
			}
			verify := struct {
				name string
				v    attestation.Verifier
			}{mode, v}
			t.Run(h.name+"/"+verify.name, func(t *testing.T) {
				cert, err := ratls.CreateProviderCertificate(context.Background(), h.provider, "node.internal")
				if err != nil {
					t.Fatal(err)
				}
				srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
					_, _ = w.Write([]byte("attested hello"))
				}))
				srv.TLS = &tls.Config{Certificates: []tls.Certificate{cert}}
				srv.StartTLS()
				defer srv.Close()

				client := &http.Client{Transport: &http.Transport{
					TLSClientConfig: ratls.ProviderClientConfig(verify.v),
				}}
				defer client.CloseIdleConnections()
				resp, err := client.Get(srv.URL)
				if err != nil {
					t.Fatalf("attested dial: %v", err)
				}
				_ = resp.Body.Close()

				// Revoke the golden: the very next handshake fails closed,
				// even against warmed memos.
				if err := h.registry.Revoke(h.golden); err != nil {
					t.Fatal(err)
				}
				h.invalidate()
				client2 := &http.Client{Transport: &http.Transport{
					TLSClientConfig: ratls.ProviderClientConfig(verify.v),
				}}
				defer client2.CloseIdleConnections()
				if _, err := client2.Get(srv.URL); err == nil {
					t.Fatal("handshake succeeded after revocation")
				}
			})
		}
	}
}
